// Package core implements LFSC, the paper's primary contribution: an online
// learning framework for task offloading in 5G small cell networks
// (Alg. 1–4). Per SCN it runs a contextual multiple-play adversarial bandit
// over context hypercubes (an Exp3.M core with weight capping), augments the
// exponential weight update with Lagrangian penalty terms for the QoS floor
// (1c) and the resource ceiling (1d), and coordinates SCNs with the greedy
// bipartite assignment of Alg. 4.
//
// Reconstruction notes (the published pseudo-code is OCR-damaged; each
// choice below is also discussed in DESIGN.md §2):
//
//   - Probability computation (Alg. 2) is Exp3.M's: cap weights at ε so no
//     task exceeds probability 1, then p_i = c[(1−γ)w̃_i/Σw̃ + γ/K]. Capped
//     hypercubes (the set S') skip the weight update this slot, exactly as
//     Alg. 3 lines 11-12 prescribe.
//   - The paper describes Alg. 2 as "a randomized algorithm" and its
//     estimators divide by p_i, which is only unbiased when tasks really are
//     selected with marginal ≈ p_i. We therefore sample each SCN's candidate
//     set by dependent rounding (DepRound — the Exp3.M selection semantics,
//     marginals exactly p_i), resolve cross-SCN conflicts with the greedy of
//     Alg. 4 over p, and backfill beams freed by conflicts in probability
//     order. An exponential-race mode and the literal deterministic reading
//     (edge weight = p_i) are kept for the selection ablation, which shows
//     DepRound dominating both on the performance ratio.
//   - The Lagrangian update (Alg. 3 lines 15-17) is projected gradient
//     ascent with decay: λ ← [(1−ηδ)λ + η·slack]₊, where slack is the
//     per-slot constraint slack normalised by the beam budget c so all
//     exponent terms share the scale of ĝ.
//
// Performance: the per-slot Decide/Observe pair is the hot kernel of every
// figure benchmark (executed T × replicas × scenarios times), so its steady
// state is allocation-free and incremental. All per-slot quantities live on
// the *present cells* of the slot (the hypercubes actually touched by the
// coverage set — the census in cellList/cellCnt, taken once per Decide and
// reused by Observe): probabilities are computed once per present cell, the
// capping solver reuses a persistent logW-sorted cell order repaired by
// insertion, the estimator accumulators are reset only over the present
// cells, and Observe scans the slot's executions bucketed by SCN instead of
// rescanning the coverage lists. Each scnState owns a scratch arena sized
// once at New from KMax/Cells/Capacity; the policy owns the cross-SCN
// buffers. See DESIGN.md §8 for the incremental-maintenance model and the
// parallel ownership rules.
package core

import (
	"fmt"
	"math"
	"slices"

	"lfsc/internal/assign"
	"lfsc/internal/parallel"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
)

// SelectionMode chooses how selection probabilities drive the assignment.
type SelectionMode int

const (
	// DepRoundMode (default) samples, per SCN, a candidate set of c tasks
	// by dependent rounding with marginals exactly p_i (the Exp3.M
	// selection semantics), resolves cross-SCN conflicts with the greedy
	// of Alg. 4 over p, and backfills freed beams by p. This keeps the
	// importance-weighted estimators (which divide by p_i) unbiased up to
	// conflict effects.
	DepRoundMode SelectionMode = iota
	// Race draws an exponential race per edge with rate p_i. Noisier than
	// DepRound (pairwise win odds are only proportional to p); kept for
	// the selection ablation.
	Race
	// Deterministic uses p_i directly as the greedy edge weight — the
	// literal reading of Alg. 4's input; pure exploitation, no sampling.
	Deterministic
)

// Config parameterises LFSC.
type Config struct {
	// SCNs is the number of small cell nodes M.
	SCNs int
	// Capacity is the per-slot beam budget c of each SCN.
	Capacity int
	// Alpha is the per-SCN minimum completed task threshold (1c).
	Alpha float64
	// Beta is the per-SCN resource capacity (1d).
	Beta float64
	// Cells is the number of context hypercubes (h_T)^{D_b}.
	Cells int
	// KMax is the bound K_m on per-SCN visible tasks per slot.
	KMax int
	// Horizon is the time horizon T used in the parameter schedule.
	Horizon int
	// Gamma, Eta, Delta override the Theorem-1 schedule when positive.
	Gamma, Eta, Delta float64
	// WeightDecay is the per-slot exponential forgetting rate ρ applied to
	// log-weights (logW ← (1−ρ)·logW, an Exp3.S-style drift toward
	// uniform). Without it, weights integrate the entire history: every
	// cell whose λ-adjusted drift was ever positive ratchets up to the
	// Exp3.M cap and stays, so the effective top set dilutes over a long
	// run and per-slot violations creep back up. With forgetting, the
	// ranking tracks the *recent* drift, giving a stable equilibrium (and
	// robustness to non-stationary rewards). Negative disables; zero
	// selects the default.
	WeightDecay float64
	// LambdaRate scales the multiplier step size relative to η (the
	// multiplier update uses η·LambdaRate). Zero selects the default.
	// Larger values make the constraint response faster at the cost of
	// larger oscillations around the dual optimum.
	LambdaRate float64
	// SlackPull is the asymmetry of the dual update: the rate at which
	// constraint slack (being safely inside the feasible region) pulls a
	// multiplier back down, relative to the rate at which violations push
	// it up. The violation metrics are hinges — only shortfall/excess
	// counts — so a symmetric (=1) ascent lets λ undershoot as soon as the
	// constraint is met and per-slot violations oscillate. 0 would be the
	// pure hinge subgradient (λ only ratchets up). Zero selects the
	// default; negative selects the pure hinge.
	SlackPull float64
	// Workers forces the number of goroutines used for the per-SCN
	// Decide/Observe computation: 1 runs strictly serially, larger values
	// bound the fan-out, 0 (default) sizes the parallelism to the slot.
	// Results are bit-identical for every setting — parallelism never
	// changes what is computed (each SCN owns its weights, multipliers,
	// RNG stream, and scratch arena).
	Workers int
	// Mode selects randomized or deterministic edge priorities.
	Mode SelectionMode
	// DisableCapping turns off Exp3.M weight capping (ablation A5).
	DisableCapping bool
	// DisableLagrangian freezes λ1 = λ2 = 0, reducing LFSC to a pure
	// constrained-blind Exp3.M (ablation A3).
	DisableLagrangian bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.SCNs <= 0:
		return fmt.Errorf("core: SCNs must be positive, got %d", c.SCNs)
	case c.Capacity <= 0:
		return fmt.Errorf("core: capacity must be positive, got %d", c.Capacity)
	case c.Cells <= 0:
		return fmt.Errorf("core: cells must be positive, got %d", c.Cells)
	case c.KMax <= 0:
		return fmt.Errorf("core: KMax must be positive, got %d", c.KMax)
	case c.Horizon <= 0:
		return fmt.Errorf("core: horizon must be positive, got %d", c.Horizon)
	case c.Alpha < 0 || c.Beta < 0:
		return fmt.Errorf("core: alpha/beta must be non-negative")
	case c.Gamma < 0 || c.Gamma > 1:
		return fmt.Errorf("core: gamma %v outside [0,1]", c.Gamma)
	case c.Eta < 0 || c.Delta < 0:
		return fmt.Errorf("core: eta/delta must be non-negative")
	case c.Workers < 0:
		return fmt.Errorf("core: workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// Schedule returns the effective (γ, η, δ) after applying Theorem 1's
// defaults for unset values:
//
//	γ = min(1, sqrt(K·ln(K/c) / ((e−1)·c·T)))   (Exp3.M optimal mixing)
//	η = γ/F   where F is the number of hypercubes
//	δ = η/√T
//
// The learning rate divides by the number of hypercubes F rather than the
// task bound K: LFSC's weights (and hence its importance-weighted loss
// estimates) live on the F context cells, so F is the effective arm count
// for the exponential update, while K governs the exploration mixing over
// the per-slot task list. With F ≪ K (paper: 27 cells vs up to 200 tasks)
// the K-scaled rate is an order of magnitude too conservative to converge
// within the paper's horizon.
func (c Config) Schedule() (gamma, eta, delta float64) {
	gamma = c.Gamma
	if gamma == 0 {
		k := float64(c.KMax)
		cc := float64(c.Capacity)
		ratio := k / cc
		if ratio < math.E {
			ratio = math.E // keep the log positive for K close to c
		}
		gamma = math.Min(1, math.Sqrt(k*math.Log(ratio)/((math.E-1)*cc*float64(c.Horizon))))
	}
	eta = c.Eta
	if eta == 0 {
		eta = gamma / float64(c.Cells)
	}
	delta = c.Delta
	if delta == 0 {
		delta = eta / math.Sqrt(float64(c.Horizon))
	}
	return gamma, eta, delta
}

// scnState is the per-SCN learner state.
//
// Weights are stored in log space: over a long horizon the exponential
// update drives weight ratios past float64's dynamic range (a 10⁴-slot run
// at paper scale reaches ratios of 1e30+), and once tail weights underflow
// to zero their relative order — which ranks the candidates that fill most
// of the beam budget — is destroyed. The Exp3.M probability formula and the
// capping fixed point depend only on weight ratios, so shifting by the
// maximum log-weight before exponentiating is exact.
//
// Everything below the learner state is the SCN's private scratch arena:
// buffers sized once (from KMax, Cells, Capacity) and reset by re-slicing,
// never reallocated in steady state. Only the goroutine processing SCN m
// inside Decide/Observe may touch SCN m's arena — that ownership is what
// makes the parallel per-SCN loop race-free and bit-identical to serial
// execution.
type scnState struct {
	logW    []float64 // log-weights, one per hypercube
	lambda1 float64   // multiplier for the QoS floor (1c)
	lambda2 float64   // multiplier for the resource ceiling (1d)
	// r is this SCN's private random stream (derived from the policy
	// stream by SCN index), so per-SCN computation is independent of
	// iteration order and safe to run in parallel.
	r *rng.Stream

	// Per-slot cell cache, written by Decide and read by the same slot's
	// Observe and backfill: after cellProbs, cellW[f] holds the final
	// selection probability of every present cell f (intermediate shifted
	// weights are overwritten in place), and the census (cellCnt, cellList,
	// taskCells) records which cells the slot touched — the dirty set that
	// bounds every subsequent per-cell pass.
	capped     []bool // capped[f] ⇔ hypercube f ∈ S' this slot
	cappedList []int  // hypercubes currently flagged in capped
	cellW      []float64
	cellCnt    []int   // visible-task count per hypercube
	cellList   []int   // hypercubes present this slot, first-touch order
	taskCells  []int32 // hypercube per visible-task position

	// Decide-internal scratch:
	probs    []float64              // positional probabilities (test/reference fan-out)
	sorted   []float64              // solveCap ascending order statistics
	suffix   []float64              // solveCap prefix sums (k+1)
	edges    []assign.Edge          // this SCN's bipartite edges (Race/Deterministic)
	dep      assign.DepRoundScratch // DepRound working memory
	pickTask []int32                // DepRound candidate task indices (≤ Capacity+1)
	pickP    []float64              // matching selection probabilities
	capV     []float64              // solveCapCells distinct values, ascending
	capN     []int                  // solveCapCells multiplicities, parallel to capV
	// order holds every hypercube sorted ascending by logW. The weight
	// update barely perturbs the ranking, so solveCapCells repairs it with
	// an insertion pass over a nearly sorted array and gets its ascending
	// order statistics for free — exp is monotone, so logW order IS
	// shifted-weight order.
	order []int

	// Observe-internal scratch: per-hypercube accumulator pools for the
	// importance-weighted estimates (the former map[int]*cellAcc); the
	// cells with at least one visible task are listed in cellList above.
	accG, accV, accQ []float64
}

// newSCNState builds SCN state with the arena pre-sized from the config.
func newSCNState(cfg Config, r *rng.Stream) *scnState {
	order := make([]int, cfg.Cells)
	for f := range order {
		order[f] = f
	}
	return &scnState{
		order:      order,
		logW:       make([]float64, cfg.Cells),
		r:          r,
		probs:      make([]float64, 0, cfg.KMax),
		capped:     make([]bool, cfg.Cells),
		cappedList: make([]int, 0, cfg.Cells),
		sorted:     make([]float64, 0, cfg.KMax),
		suffix:     make([]float64, 0, cfg.KMax+1),
		edges:      make([]assign.Edge, 0, cfg.KMax),
		pickTask:   make([]int32, 0, cfg.Capacity+1),
		pickP:      make([]float64, 0, cfg.Capacity+1),
		cellW:      make([]float64, cfg.Cells),
		cellCnt:    make([]int, cfg.Cells),
		cellList:   make([]int, 0, cfg.Cells),
		taskCells:  make([]int32, 0, cfg.KMax),
		capV:       make([]float64, 0, cfg.Cells),
		capN:       make([]int, 0, cfg.Cells),
		accG:       make([]float64, cfg.Cells),
		accV:       make([]float64, cfg.Cells),
		accQ:       make([]float64, cfg.Cells),
	}
}

// resetSlot clears the cross-call scratch (the capped set and the DepRound
// candidate picks) at the start of a new Decide.
func (st *scnState) resetSlot() {
	for _, f := range st.cappedList {
		st.capped[f] = false
	}
	st.cappedList = st.cappedList[:0]
	st.pickTask = st.pickTask[:0]
	st.pickP = st.pickP[:0]
}

// resetCaches drops every slot-derived cache (the capped set, the cell
// census, cached per-cell probabilities' bookkeeping, DepRound picks) so a
// freshly restored learner rebuilds them on its next Decide. Cached
// aggregates are never serialized — only logW, λ, t, and the RNG streams
// travel through a checkpoint.
func (st *scnState) resetCaches() {
	st.resetSlot()
	for _, f := range st.cellList {
		st.cellCnt[f] = 0
	}
	st.cellList = st.cellList[:0]
	st.probs = st.probs[:0]
}

// setCapped flags hypercube f as a member of S' this slot.
func (st *scnState) setCapped(f int) {
	if !st.capped[f] {
		st.capped[f] = true
		st.cappedList = append(st.cappedList, f)
	}
}

// LFSC implements policy.Policy.
type LFSC struct {
	cfg               Config
	gamma, eta, delta float64
	lambdaRate        float64
	decay             float64
	slackPull         float64
	scns              []*scnState
	r                 *rng.Stream
	// owned lists the SCN indices this learner materializes, strictly
	// ascending; nil means all of them (the common, unsharded case). A
	// partial learner (NewPartial) holds nil entries in scns for SCNs it
	// does not own and can only run the per-SCN stage (DecideLocal /
	// Observe); the cross-SCN resolution then runs in a Merger that sees
	// every shard's states.
	owned []int
	// slots counts completed Decide/Observe rounds. It is checkpointed so
	// a restored learner knows how far through the horizon it is: the
	// γ/η/δ schedule and the per-slot decay are calibrated against
	// Horizon, and a serving deployment that resumes from a checkpoint
	// must continue the schedule (and its own slot clock) from this point
	// rather than restarting at zero.
	slots int

	// res owns the cross-SCN assignment-resolution scratch. It is shared
	// code with the sharded Merger: both call resolver.resolve over a
	// states array, which is what keeps Shards=1 and Shards=N
	// bit-identical — there is only one resolution implementation.
	res resolver

	execOff   []int   // Observe: per-SCN exec bucket offsets (SCNs+1)
	execCur   []int   // Observe: counting-sort cursors
	execOrder []int32 // Observe: exec indices grouped by SCN
}

// newLFSC builds the learner shell (schedule, defaults, policy-global
// scratch) without any per-SCN state; New and NewPartial fill scns.
func newLFSC(cfg Config, r *rng.Stream) (*LFSC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &LFSC{cfg: cfg, r: r}
	l.gamma, l.eta, l.delta = cfg.Schedule()
	l.lambdaRate = cfg.LambdaRate
	if l.lambdaRate == 0 {
		l.lambdaRate = defaultLambdaRate
	}
	l.decay = cfg.WeightDecay
	if l.decay == 0 {
		l.decay = defaultWeightDecay
	}
	if l.decay < 0 {
		l.decay = 0
	}
	l.slackPull = cfg.SlackPull
	if l.slackPull == 0 {
		l.slackPull = defaultSlackPull
	}
	if l.slackPull < 0 {
		l.slackPull = 0
	}
	l.scns = make([]*scnState, cfg.SCNs)
	l.res = newResolver(cfg)
	l.execOff = make([]int, cfg.SCNs+1)
	l.execCur = make([]int, cfg.SCNs)
	return l, nil
}

// New constructs an LFSC policy. The stream drives the randomized edge
// priorities only; all learning state is deterministic given the feedback.
func New(cfg Config, r *rng.Stream) (*LFSC, error) {
	l, err := newLFSC(cfg, r)
	if err != nil {
		return nil, err
	}
	for m := 0; m < cfg.SCNs; m++ {
		l.scns[m] = newSCNState(cfg, r.Derive(uint64(m)))
	}
	return l, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, r *rng.Stream) *LFSC {
	l, err := New(cfg, r)
	if err != nil {
		panic(err)
	}
	return l
}

// Name implements policy.Policy.
func (l *LFSC) Name() string { return "LFSC" }

// Gamma returns the effective exploration rate (for reports).
func (l *LFSC) Gamma() float64 { return l.gamma }

// SlotsSeen returns the number of completed Decide/Observe rounds the
// learner has absorbed (including any carried in from a checkpoint).
func (l *LFSC) SlotsSeen() int { return l.slots }

// Multipliers returns SCN m's current Lagrange multipliers (λ1, λ2).
func (l *LFSC) Multipliers(m int) (float64, float64) {
	return l.scns[m].lambda1, l.scns[m].lambda2
}

// Weights returns SCN m's hypercube log-weights (for inspection). Only
// differences are meaningful: the selection probability of a cell's tasks
// is monotone in its log-weight.
func (l *LFSC) Weights(m int) []float64 {
	return append([]float64(nil), l.scns[m].logW...)
}

// Decide implements policy.Policy: Alg. 2 per SCN, then Alg. 4 globally.
//
// The per-SCN probability computation and candidate sampling are
// independent (each SCN has private weights, multipliers, RNG stream, and
// scratch arena), so they run on all cores via a dynamic worker loop; only
// the cross-SCN candidate resolution is a global step. Results are
// bit-identical to the sequential execution.
//
// The returned assignment aliases a policy-owned buffer: it is valid until
// the next Decide call, which matches the simulator's slot protocol
// (Decide → execute → Observe, then the next slot).
func (l *LFSC) Decide(view *policy.SlotView) []int {
	if l.owned != nil {
		panic("core: Decide on a partial learner — run DecideLocal and resolve through a Merger")
	}
	l.DecideLocal(view)
	return l.res.resolve(l.scns, view)
}

// DecideLocal runs only the per-SCN stage of Decide (Alg. 2: probabilities
// and candidate sampling) for every SCN this learner owns, leaving each
// owned scnState primed for a resolver pass. A full learner's Decide is
// DecideLocal + resolve; a sharded deployment calls DecideLocal on every
// shard in parallel and then resolves once through a Merger over the
// combined states — the same resolver code, hence bit-identical results.
func (l *LFSC) DecideLocal(view *policy.SlotView) {
	if workers := l.workersFor(view); workers == 1 {
		// Serial fast path: no goroutine fan-out, no closure — the
		// steady-state Decide allocates nothing.
		for m := range view.SCNs {
			l.decideSCN(view, m)
		}
	} else {
		parallel.ForDynamic(len(view.SCNs), workers, func(m int) { l.decideSCN(view, m) })
	}
}

// resolver owns the cross-SCN candidate-resolution stage (Alg. 4) and its
// scratch. It reads the per-SCN stage's outputs through a states array —
// either a full learner's own scns or a Merger's stitched view across
// shards — so both deployments execute the identical resolution code path.
type resolver struct {
	capacity int
	numSCNs  int
	mode     SelectionMode

	perSCNEdges [][]assign.Edge
	assigned    []int     // assignment buffer returned by resolve
	bestP       []float64 // per-task best candidate probability (mergePicks)
	greedy      assign.GreedyScratch
	counts      []int     // backfill per-SCN beam counters
	selP        []float64 // backfill top-free selection: probabilities,
	selLW       []float64 // log-weight tie-breaks,
	selIdx      []int     // and slot-global task indices (≤ Capacity each)

	// mergeWorkers > 1 enables the parallel tournament reduction of the
	// per-SCN edge lists ahead of the greedy (assign.TournamentMergeInto);
	// ≤ 1 keeps the sequential k-way heap merge. Both paths emit the
	// identical assignment — cmpEdge is a strict total order over
	// distinct edges, so every correct merge yields the same stream.
	mergeWorkers int
	tour         assign.TournamentScratch
	mergedOne    [1][]assign.Edge // single-stream header for the greedy
}

// tournamentMinEdges is the edge count below which the tournament
// fan-out costs more than the heap merge it replaces.
const tournamentMinEdges = 512

func newResolver(cfg Config) resolver {
	return resolver{
		capacity:    cfg.Capacity,
		numSCNs:     cfg.SCNs,
		mode:        cfg.Mode,
		perSCNEdges: make([][]assign.Edge, cfg.SCNs),
		counts:      make([]int, cfg.SCNs),
		selP:        make([]float64, cfg.Capacity),
		selLW:       make([]float64, cfg.Capacity),
		selIdx:      make([]int, cfg.Capacity),
		// An explicit Workers > 1 opts the merge stage into the tournament
		// reduction; the 0 (auto) default keeps the sequential merge — the
		// sharded Merger opts in explicitly via SetMergeWorkers.
		mergeWorkers: cfg.Workers,
	}
}

// resolve turns the per-SCN candidate sets produced by the DecideLocal
// stage into the global assignment. Every states[m] must be primed by this
// slot's per-SCN stage (st.edges / pickTask are otherwise stale); the
// returned slice aliases resolver-owned scratch valid until the next call.
func (r *resolver) resolve(states []*scnState, view *policy.SlotView) []int {
	if len(view.SCNs) > len(r.perSCNEdges) {
		// Defensive: a view wider than the configured SCN count.
		r.perSCNEdges = make([][]assign.Edge, len(view.SCNs))
	}
	if r.mode == DepRoundMode {
		// DepRound mode never exposes the greedy to a capacity bind (each
		// SCN contributes at most Capacity candidates), so the global
		// resolution collapses to a per-task argmax over the candidate
		// probabilities — see mergePicks. DepRound emits round(Σp) = c
		// candidates analytically; should float drift ever produce c+1,
		// fall back to the full greedy so the capacity rule applies in the
		// exact historical order.
		overflow := false
		for m := range view.SCNs {
			if len(states[m].pickTask) > view.CapAt(m, r.capacity) {
				overflow = true
				break
			}
		}
		if overflow {
			for m := range view.SCNs {
				st := states[m]
				st.edges = st.edges[:0]
				for j, t32 := range st.pickTask {
					st.edges = append(st.edges, assign.Edge{SCN: m, Task: int(t32), W: st.pickP[j]})
				}
				assign.SortEdges(st.edges)
				r.perSCNEdges[m] = st.edges
			}
			r.mergeGreedy(view)
		} else {
			r.mergePicks(states, view)
		}
		r.backfill(states, view, r.assigned)
	} else {
		// Each SCN's edge list was sorted inside the parallel per-SCN
		// stage, so the global greedy consumes them through a k-way merge —
		// bit-identical to concatenating and sorting, minus the dominant
		// comparison sort. Empty-cover SCNs never primed st.edges this
		// slot, so their lists are pinned to nil rather than read stale.
		for m := range view.SCNs {
			if len(view.SCNs[m].Cover) == 0 {
				r.perSCNEdges[m] = nil
			} else {
				r.perSCNEdges[m] = states[m].edges
			}
		}
		r.mergeGreedy(view)
	}
	return r.assigned
}

// mergeGreedy runs the capacitated global greedy over the slot's
// per-SCN sorted edge lists. With mergeWorkers > 1 and enough edges to
// amortise the fan-out, the lists are first reduced to one pre-merged
// stream by the parallel tournament (pairs of sorted lists merged
// concurrently level by level), and the greedy consumes that single
// stream; otherwise it k-way-heap-merges the lists directly. The edge
// order either way is the unique cmpEdge total order, so the assignment
// is bit-identical — pinned by the 1/2/4/7-shard lockstep twins.
func (r *resolver) mergeGreedy(view *policy.SlotView) {
	lists := r.perSCNEdges[:len(view.SCNs)]
	if r.mergeWorkers > 1 {
		total, nonEmpty := 0, 0
		for _, l := range lists {
			total += len(l)
			if len(l) > 0 {
				nonEmpty++
			}
		}
		if nonEmpty >= 3 && total >= tournamentMinEdges {
			r.mergedOne[0] = assign.TournamentMergeInto(&r.tour, lists, r.mergeWorkers)
			r.assigned = assign.GreedyMergeCapsInto(r.assigned, &r.greedy, r.mergedOne[:], r.numSCNs, view.NumTasks, r.capacity, view.Caps)
			return
		}
	}
	r.assigned = assign.GreedyMergeCapsInto(r.assigned, &r.greedy, lists, r.numSCNs, view.NumTasks, r.capacity, view.Caps)
}

// decideSCN runs Alg. 2 for one SCN: per-cell probabilities, then candidate
// sampling. It touches only SCN m's arena, so any number of decideSCN calls
// for distinct SCNs may run concurrently.
func (l *LFSC) decideSCN(view *policy.SlotView, m int) {
	st := l.scns[m]
	if st == nil {
		return // partial learner: SCN owned by another shard
	}
	st.resetSlot()
	cover := view.SCNs[m].Cover
	if len(cover) == 0 {
		// Masked SCNs (scenario sleep/fail) and genuinely uncovered slots
		// take the same exit: no candidates, no edges — and Observe's
		// matching early return freezes the weights and multipliers until
		// the SCN rejoins.
		return
	}
	// Effective beam capacity this slot: the scenario's c_n(t) when the
	// view carries capacity dynamics, the configured nominal otherwise.
	// Always ≤ nominal, so every arena sized for cfg.Capacity still fits.
	c := view.CapAt(m, l.cfg.Capacity)
	l.cellProbs(st, cover, view.Cells, c)
	taskCells := st.taskCells[:len(cover)]
	switch l.cfg.Mode {
	case DepRoundMode:
		// Sample the SCN's candidate set with marginals exactly p: gather
		// the per-cell probabilities into the DepRound buffer (same values
		// the positional fan-out used to produce) and round in place.
		w := st.dep.Weights(len(cover))
		for i, f := range taskCells {
			w[i] = st.cellW[f]
		}
		for _, i := range assign.DepRoundPrepared(&st.dep, st.r) {
			st.pickTask = append(st.pickTask, int32(cover[i]))
			st.pickP = append(st.pickP, st.cellW[taskCells[i]])
		}
		return
	case Race:
		st.edges = st.edges[:0]
		for i, f := range taskCells {
			st.edges = append(st.edges, assign.Edge{SCN: m, Task: cover[i], W: st.cellW[f] / st.r.Exponential(1)})
		}
	case Deterministic:
		st.edges = st.edges[:0]
		for i, f := range taskCells {
			st.edges = append(st.edges, assign.Edge{SCN: m, Task: cover[i], W: st.cellW[f]})
		}
	}
	// Pre-sort this SCN's edges (in the parallel stage) so the global
	// greedy can k-way merge the lists instead of sorting the union.
	assign.SortEdges(st.edges)
}

// mergePicks resolves the per-SCN DepRound candidate sets into the global
// assignment. In DepRound mode each SCN emits at most Capacity candidates,
// so Alg. 4's per-SCN capacity check can never trigger — every edge the
// greedy would accept is simply the heaviest edge of its task, ties to the
// lowest SCN (the cmpEdge order). Scanning SCNs in ascending order and
// keeping the strictly best probability per task therefore reproduces the
// former sort + k-way-merge greedy bit-for-bit, in linear time.
func (r *resolver) mergePicks(states []*scnState, view *policy.SlotView) {
	n := view.NumTasks
	assigned := growInts(&r.assigned, n)
	bestP := growFloats(&r.bestP, n)
	for i := range assigned {
		assigned[i] = -1
	}
	for m := range view.SCNs {
		st := states[m]
		for j, t32 := range st.pickTask {
			idx := int(t32)
			if idx < 0 || idx >= n {
				panic(fmt.Sprintf("core: candidate task %d out of range", idx))
			}
			if p := st.pickP[j]; assigned[idx] == -1 || p > bestP[idx] {
				assigned[idx] = m
				bestP[idx] = p
			}
		}
	}
}

// workersFor sizes the parallelism to the slot: tiny slots are cheaper to
// process serially than to fan out. A positive Config.Workers overrides the
// heuristic.
func (l *LFSC) workersFor(view *policy.SlotView) int {
	if l.cfg.Workers > 0 {
		return l.cfg.Workers
	}
	total := 0
	for m := range view.SCNs {
		total += len(view.SCNs[m].Cover)
	}
	if total < 256 {
		return 1
	}
	return 0 // default worker count
}

// backfill tops up SCNs that lost sampled candidates to cross-SCN conflicts:
// freed beams take the highest-probability unassigned visible tasks. This
// mirrors the paper's cascade discussion — a SCN whose optimal task went to
// a peer falls back to its next best choice rather than idling the beam.
//
// Candidates are ranked by probability; probabilities tie when weights
// underflow (exploration floor) or saturate (capped at 1), so the exact
// log-weight breaks ties before the deterministic task index. That ranking
// is a strict total order, so taking the best remaining candidate `free`
// times selects exactly the prefix a full descending sort would — without
// building or sorting a candidate list (free ≤ c is small; the conflicts
// being repaired rarely free more than a few beams).
func (r *resolver) backfill(states []*scnState, view *policy.SlotView, assigned []int) {
	counts := r.counts[:0]
	for m := 0; m < r.numSCNs; m++ {
		counts = append(counts, 0)
	}
	r.counts = counts
	for _, m := range assigned {
		if m >= 0 {
			counts[m]++
		}
	}
	for m := range view.SCNs {
		free := view.CapAt(m, r.capacity) - counts[m]
		if free <= 0 {
			continue
		}
		st := states[m]
		cover := view.SCNs[m].Cover
		// One-pass bounded selection: keep the best `free` candidates seen
		// so far in rank order (insertion into a ≤Capacity-sized window,
		// most candidates rejected on one comparison with the window's
		// worst). The window ends holding exactly the prefix a full
		// descending sort of the candidates would, in the same order.
		n := 0
		for i, idx := range cover {
			if assigned[idx] != -1 {
				continue
			}
			f := int(st.taskCells[i])
			p, lw := st.cellW[f], st.logW[f]
			if n == free && !backfillBeats(p, lw, idx, r.selP[n-1], r.selLW[n-1], r.selIdx[n-1]) {
				continue
			}
			j := n
			if n == free {
				j = n - 1
			} else {
				n++
			}
			for j > 0 && backfillBeats(p, lw, idx, r.selP[j-1], r.selLW[j-1], r.selIdx[j-1]) {
				r.selP[j], r.selLW[j], r.selIdx[j] = r.selP[j-1], r.selLW[j-1], r.selIdx[j-1]
				j--
			}
			r.selP[j], r.selLW[j], r.selIdx[j] = p, lw, idx
		}
		for x := 0; x < n; x++ {
			assigned[r.selIdx[x]] = m
		}
	}
}

// backfillBeats reports whether candidate a outranks candidate b in the
// backfill order: probability descending, then log-weight descending (exact
// tie-break when probabilities saturate at the cap or the exploration
// floor), then task index ascending — a strict total order over distinct
// tasks.
func backfillBeats(aP, aLW float64, aIdx int, bP, bLW float64, bIdx int) bool {
	if aP != bP {
		return aP > bP
	}
	if aLW != bLW {
		return aLW > bLW
	}
	return aIdx < bIdx
}

// cellProbs runs Exp3.M weight capping and the mixing formula for one SCN's
// coverage list, leaving the final selection probability of every present
// cell in st.cellW (valid until the next Decide); capped hypercubes (the
// set S') are flagged in st.capped, and the slot's census (cellCnt,
// cellList, taskCells) is rebuilt for Observe and backfill to reuse.
//
// Tasks in the same hypercube share a weight, so the transcendental and
// capping arithmetic runs once per *present cell* (≤ min(K, Cells) distinct
// values — 27 in the paper setup vs up to 100 tasks): one exp, one cap test
// and one mixing division per cell, and no positional fan-out at all. Every
// per-task accumulation (the weight sums) keeps its original task-order
// iteration, and per-cell expressions are bit-for-bit the ones previously
// evaluated per task, so the produced probabilities are bit-identical to
// the ungrouped computation.
func (l *LFSC) cellProbs(st *scnState, cover []int, cells []int, c int) {
	k := len(cover)
	// Reset the previous slot's census, then count tasks per hypercube;
	// cellList records present cells in first-touch order (deterministic —
	// coverage order is deterministic). taskCells caches each position's
	// cell so the later passes scan a compact int32 array instead of
	// chasing the coverage indices again.
	for _, f := range st.cellList {
		st.cellCnt[f] = 0
	}
	present := st.cellList[:0]
	taskCells := growInt32(&st.taskCells, k)
	for i, idx := range cover {
		f := cells[idx]
		taskCells[i] = int32(f)
		if st.cellCnt[f] == 0 {
			present = append(present, f)
		}
		st.cellCnt[f]++
	}
	st.cellList = present
	if k <= c {
		// Fewer tasks than beams: everything can be served. The per-cell
		// probability is exactly 1 (Observe and backfill read it back).
		for _, f := range present {
			st.cellW[f] = 1
		}
		return
	}
	// Shift log-weights by the slot maximum before exponentiating; both the
	// mixing formula and the capping fixed point are scale-invariant. The
	// shifted exponent is floored so no weight underflows to exact zero:
	// with an all-zero tail the capping fixed point degenerates to ε = 0
	// and the mixing denominator vanishes. A floor of e^-60 keeps 60 nats
	// of ranking range — far beyond what selection can distinguish anyway.
	const minLogDiff = -60.0
	maxLog := math.Inf(-1)
	for _, f := range present {
		if lw := st.logW[f]; lw > maxLog {
			maxLog = lw
		}
	}
	for _, f := range present {
		d := st.logW[f] - maxLog
		if d < minLogDiff {
			d = minLogDiff
		}
		st.cellW[f] = math.Exp(d)
	}
	sum := 0.0
	maxW := 0.0
	for _, f := range taskCells {
		wi := st.cellW[f]
		sum += wi
		if wi > maxW {
			maxW = wi
		}
	}
	// τ = (1/c − γ/K)/(1−γ): the weight-share above which p would exceed 1.
	tau := (1/float64(c) - l.gamma/float64(k)) / (1 - l.gamma)
	if !l.cfg.DisableCapping && tau > 0 && maxW >= tau*sum {
		eps := solveCapCells(st, k, tau)
		for _, f := range present {
			if st.cellW[f] >= eps {
				st.cellW[f] = eps
				st.setCapped(f)
			}
		}
		sum = 0
		for _, f := range taskCells {
			sum += st.cellW[f]
		}
	}
	// Mixing formula once per cell (identical expression, value shared by
	// the cell's tasks); the final probability overwrites the shifted
	// weight in place.
	for _, f := range present {
		p := float64(c) * ((1-l.gamma)*st.cellW[f]/sum + l.gamma/float64(k))
		if p > 1 {
			p = 1 // numerical safety; capping guarantees ≤ 1 analytically
		}
		if p < 0 {
			p = 0
		}
		st.cellW[f] = p
	}
}

// probabilities is the positional form of cellProbs, used by tests and
// reference implementations: the per-cell probabilities are fanned out to
// st's probs arena, one entry per cover position (the layout the hot path
// no longer materializes).
func (l *LFSC) probabilities(st *scnState, cover []int, cells []int) []float64 {
	l.cellProbs(st, cover, cells, l.cfg.Capacity)
	probs := growFloats(&st.probs, len(cover))
	for i, f := range st.taskCells[:len(cover)] {
		probs[i] = st.cellW[f]
	}
	return probs
}

// growInt32 re-slices *buf to length n, reallocating only when the arena
// capacity is exceeded (first slots of a run, or a workload spike).
func growInt32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n, n+n/2)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growInts re-slices *buf to length n, reallocating only when the arena
// capacity is exceeded.
func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n, n+n/2)
	}
	*buf = (*buf)[:n]
	return *buf
}

// solveCapCells solves the cap fixed point over the grouped weights: the
// ascending order statistics of the per-task weight multiset are produced by
// walking the persistent logW-sorted cell order and expanding each present
// value by its task count. Equal values are interchangeable in an
// order-statistics array, so the expansion is element-for-element the array
// solveCapInto would sort, without any per-slot comparison sort.
func solveCapCells(st *scnState, k int, tau float64) float64 {
	// Repair the persistent ascending-by-logW cell order. Between calls the
	// weight update moves only a handful of cells (and the decay is
	// order-preserving: x < y ⟹ (1−ρ)x < (1−ρ)y for every sign), so the
	// array is nearly sorted and this insertion pass degenerates to a
	// verification scan; arbitrary external logW edits are also absorbed,
	// just more slowly.
	ord := st.order
	for i := 1; i < len(ord); i++ {
		f := ord[i]
		lw := st.logW[f]
		j := i
		for j > 0 && st.logW[ord[j-1]] > lw {
			ord[j] = ord[j-1]
			j--
		}
		ord[j] = f
	}
	// The shifted weight exp(clamp(logW − maxLog)) is monotone
	// non-decreasing in logW, so filtering the order to present cells
	// yields the distinct values already ascending — no per-slot sort.
	vals := st.capV[:0]
	cnts := st.capN[:0]
	for _, f := range st.order {
		if st.cellCnt[f] > 0 {
			vals = append(vals, st.cellW[f])
			cnts = append(cnts, st.cellCnt[f])
		}
	}
	st.capV, st.capN = vals, cnts
	asc := growFloats(&st.sorted, k)
	pos := 0
	for i, v := range vals {
		for x := 0; x < cnts[i]; x++ {
			asc[pos] = v
			pos++
		}
	}
	return solveCapSorted(&st.suffix, asc, tau)
}

// growFloats re-slices *buf to length n, reallocating only when the arena
// capacity is exceeded (first slots of a run, or a workload spike).
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n, n+n/2)
	}
	*buf = (*buf)[:n]
	return *buf
}

// solveCap finds ε with ε = τ·Σ_i min(w_i, ε) (the Exp3.M cap fixed point).
// With the top-j weights capped, ε_j = τ·rest_j/(1−jτ); the valid j is the
// one with w_(j) ≥ ε_j ≥ w_(j+1) in the descending order statistics.
func solveCap(w []float64, tau float64) float64 {
	var sorted, suffix []float64
	return solveCapInto(&sorted, &suffix, w, tau)
}

// solveCapInto is solveCap with caller-owned scratch for the order
// statistics and suffix sums (LFSC passes the SCN's arena).
//
// The order statistics are kept ascending and indexed from the back: the
// specialized slices.Sort on a bare []float64 is several times faster than a
// comparison-function sort, and weights are never NaN, so the descending
// view asc[n-1-x] is exactly the old explicitly-descending array.
func solveCapInto(sortedBuf, suffixBuf *[]float64, w []float64, tau float64) float64 {
	asc := append((*sortedBuf)[:0], w...)
	*sortedBuf = asc
	slices.Sort(asc)
	return solveCapSorted(suffixBuf, asc, tau)
}

// solveCapSorted runs the fixed-point search over ascending order
// statistics (the tail of solveCapInto, shared with solveCapCells).
func solveCapSorted(suffixBuf *[]float64, asc []float64, tau float64) float64 {
	n := len(asc)
	// rest_j (the tail sum Σ_{i>j} w_(j)) is accumulated smallest-first as a
	// prefix sum over the ascending order: subtracting head weights from the
	// total instead would cancel catastrophically when the tail is many
	// orders of magnitude below the head (log-weights legitimately span
	// e^±60 here). pre[i] = Σ of the i smallest weights, so the descending
	// tail sum past rank j is pre[n-j] — added in the identical
	// smallest-first order as the former backward suffix loop.
	pre := growFloats(suffixBuf, n+1)
	pre[0] = 0
	for i := 0; i < n; i++ {
		pre[i+1] = pre[i] + asc[i]
	}
	for j := 1; j <= n; j++ {
		rest := pre[n-j]
		denom := 1 - float64(j)*tau
		if denom <= 0 {
			break
		}
		eps := tau * rest / denom
		lower := 0.0
		if j < n {
			lower = asc[n-1-j]
		}
		// Validity window with relative tolerance.
		if eps <= asc[n-j]*(1+1e-12) && eps >= lower*(1-1e-12) {
			return eps
		}
	}
	// Should be unreachable for K > c (existence is proven in the Exp3.M
	// analysis); fall back to the identity cap (no weight modified) and
	// rely on the final per-task clamp p ≤ 1.
	return asc[n-1]
}

// defaultSlackPull is the default dual-update asymmetry (see
// Config.SlackPull).
const defaultSlackPull = 0.25

// defaultWeightDecay is the default forgetting rate ρ (see
// Config.WeightDecay); chosen by the calibration sweep in EXPERIMENTS.md.
const defaultWeightDecay = 1e-3

// defaultLambdaRate is the default multiplier step scale (see
// Config.LambdaRate); chosen by the calibration sweep in EXPERIMENTS.md:
// rate 1 responds too slowly in the exploration phase, rate ≥ 10
// oscillates around the dual optimum late in the run.
const defaultLambdaRate = 3.0

// maxExponent clamps weight-update exponents so a long streak of large
// importance-weighted estimates cannot overflow float64 in one step.
const maxExponent = 30.0

// Observe implements policy.Policy: Alg. 3 for every SCN, in parallel
// (each SCN only touches its own weights, multipliers and scratch).
func (l *LFSC) Observe(view *policy.SlotView, assigned []int, fb *policy.Feedback) {
	// Bucket the slot's executions by SCN with a counting sort so each
	// SCN's worker scans only its own feedback instead of its whole
	// coverage list. fb.Execs arrive in ascending task order (the
	// policy.Feedback contract) and the counting sort is stable, so every
	// bucket preserves ascending task order — which, with ascending
	// coverage rows, is exactly the accumulation order of the former
	// per-position scan. Built serially before the fan-out, read-only
	// inside it.
	scns := len(view.SCNs)
	off := growInts(&l.execOff, scns+1)
	for i := range off {
		off[i] = 0
	}
	for i := range fb.Execs {
		if m := fb.Execs[i].SCN; m >= 0 && m < scns {
			off[m+1]++
		}
	}
	for m := 0; m < scns; m++ {
		off[m+1] += off[m]
	}
	cur := growInts(&l.execCur, scns)
	copy(cur, off[:scns])
	order := growInt32(&l.execOrder, off[scns])
	for i := range fb.Execs {
		if m := fb.Execs[i].SCN; m >= 0 && m < scns {
			order[cur[m]] = int32(i)
			cur[m]++
		}
	}
	if workers := l.workersFor(view); workers == 1 {
		for m := range view.SCNs {
			l.observeSCN(view, fb, m)
		}
	} else {
		parallel.ForDynamic(scns, workers, func(m int) { l.observeSCN(view, fb, m) })
	}
	l.slots++
}

// observeSCN runs Alg. 3 for one SCN. Like decideSCN it touches only SCN
// m's arena (plus the read-only exec buckets), so distinct SCNs may run
// concurrently.
func (l *LFSC) observeSCN(view *policy.SlotView, fb *policy.Feedback, m int) {
	st := l.scns[m]
	if st == nil {
		return // partial learner: SCN owned by another shard
	}
	if len(view.SCNs[m].Cover) == 0 {
		// Masked or uncovered SCN: nothing executed, nothing observed —
		// the return lands BEFORE the weight update, the decay, and the
		// multiplier update, so an asleep/failed SCN's state is frozen
		// exactly as of its last up slot and resumes untouched on rejoin.
		return
	}
	// Per-hypercube sums of the importance-weighted estimates (Alg. 3
	// lines 2-8), accumulated in the arena's cell pools over this SCN's
	// exec bucket. The per-cell visible-task census (cellCnt, cellList) and
	// the per-cell selection probabilities (cellW) were already produced by
	// this slot's Decide — Observe reuses both, so the loop touches only
	// the ≤ Capacity executed tasks instead of the whole coverage list.
	for _, f := range st.cellList {
		st.accG[f], st.accV[f], st.accQ[f] = 0, 0, 0
	}
	var completed, consumed float64
	for _, ei := range l.execOrder[l.execOff[m]:l.execOff[m+1]] {
		e := &fb.Execs[ei]
		f := e.Cell
		p := st.cellW[f]
		if p <= 0 {
			continue // defensive: cannot importance-weight a 0-prob pick
		}
		st.accG[f] += e.Compound() / p
		st.accV[f] += e.V / p
		st.accQ[f] += e.Q / p
		completed += e.V
		consumed += e.Q
	}
	// Weight update (Alg. 3 lines 9-14): capped cells are skipped.
	// Log-space: the multiplicative exp(·) becomes an addition. Cells with
	// no executions contribute a zero exponent, exactly as before.
	lam1, lam2 := st.lambda1, st.lambda2
	if l.cfg.DisableLagrangian {
		lam1, lam2 = 0, 0
	}
	for _, f := range st.cellList {
		if st.capped[f] {
			continue
		}
		n := float64(st.cellCnt[f])
		gHat := st.accG[f] / n
		vHat := st.accV[f] / n
		qHat := st.accQ[f] / n
		exp := l.eta * (gHat + lam1*vHat - lam2*qHat)
		if exp > maxExponent {
			exp = maxExponent
		}
		if exp < -maxExponent {
			exp = -maxExponent
		}
		st.logW[f] += exp
	}
	if l.decay > 0 {
		// Order-preserving for every sign of logW: x < y ⟹ (1−ρ)x < (1−ρ)y.
		for f := range st.logW {
			st.logW[f] *= 1 - l.decay
		}
	}
	// Multiplier update (Alg. 3 lines 15-17): projected gradient ascent
	// with decay; slack normalised by the beam budget so the λ·v̂ and
	// λ·q̂ exponent terms share ĝ's scale.
	if !l.cfg.DisableLagrangian {
		// The violation metrics are hinges (only shortfall/excess
		// counts), so the dual ascent is asymmetric: slack beyond the
		// constraint pulls λ down at a fraction of the violation rate.
		// A symmetric (linear-constraint) update makes λ undershoot as
		// soon as the constraint is met, selection drifts back toward
		// raw reward, and per-slot violations oscillate late in the
		// run instead of decreasing as the paper reports.
		// Scenario budget dynamics scale the per-SCN constraints for this
		// slot; with no dynamics attached the nominal values flow through
		// the identical expressions (bit-identity for static runs).
		alpha, beta := l.cfg.Alpha, l.cfg.Beta
		if view.AlphaMul != nil {
			alpha *= view.AlphaMul[m]
		}
		if view.BetaMul != nil {
			beta *= view.BetaMul[m]
		}
		g1 := alpha - completed
		g2 := consumed - beta
		if g1 < 0 {
			g1 *= l.slackPull
		}
		if g2 < 0 {
			g2 *= l.slackPull
		}
		etaL := l.eta * l.lambdaRate
		st.lambda1 = project(st.lambda1, etaL, l.delta, g1)
		st.lambda2 = project(st.lambda2, etaL, l.delta, g2)
	}
}

// project applies λ ← [(1−ηδ)λ + η·grad]₊ with the theory's cap λ ≤ 1/δ.
func project(lambda, eta, delta, grad float64) float64 {
	l := (1-eta*delta)*lambda + eta*grad
	if l < 0 {
		return 0
	}
	if delta > 0 && l > 1/delta {
		return 1 / delta
	}
	return l
}
