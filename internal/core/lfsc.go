// Package core implements LFSC, the paper's primary contribution: an online
// learning framework for task offloading in 5G small cell networks
// (Alg. 1–4). Per SCN it runs a contextual multiple-play adversarial bandit
// over context hypercubes (an Exp3.M core with weight capping), augments the
// exponential weight update with Lagrangian penalty terms for the QoS floor
// (1c) and the resource ceiling (1d), and coordinates SCNs with the greedy
// bipartite assignment of Alg. 4.
//
// Reconstruction notes (the published pseudo-code is OCR-damaged; each
// choice below is also discussed in DESIGN.md §2):
//
//   - Probability computation (Alg. 2) is Exp3.M's: cap weights at ε so no
//     task exceeds probability 1, then p_i = c[(1−γ)w̃_i/Σw̃ + γ/K]. Capped
//     hypercubes (the set S') skip the weight update this slot, exactly as
//     Alg. 3 lines 11-12 prescribe.
//   - The paper describes Alg. 2 as "a randomized algorithm" and its
//     estimators divide by p_i, which is only unbiased when tasks really are
//     selected with marginal ≈ p_i. We therefore sample each SCN's candidate
//     set by dependent rounding (DepRound — the Exp3.M selection semantics,
//     marginals exactly p_i), resolve cross-SCN conflicts with the greedy of
//     Alg. 4 over p, and backfill beams freed by conflicts in probability
//     order. An exponential-race mode and the literal deterministic reading
//     (edge weight = p_i) are kept for the selection ablation, which shows
//     DepRound dominating both on the performance ratio.
//   - The Lagrangian update (Alg. 3 lines 15-17) is projected gradient
//     ascent with decay: λ ← [(1−ηδ)λ + η·slack]₊, where slack is the
//     per-slot constraint slack normalised by the beam budget c so all
//     exponent terms share the scale of ĝ.
//
// Performance: the per-slot Decide/Observe pair is the hot kernel of every
// figure benchmark (executed T × replicas × scenarios times), so its steady
// state is allocation-free. Each scnState owns a scratch arena sized once at
// New from KMax/Cells/Capacity; the policy owns the cross-SCN buffers. See
// DESIGN.md §"Performance" for the ownership rules.
package core

import (
	"fmt"
	"math"
	"slices"

	"lfsc/internal/assign"
	"lfsc/internal/parallel"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
)

// SelectionMode chooses how selection probabilities drive the assignment.
type SelectionMode int

const (
	// DepRoundMode (default) samples, per SCN, a candidate set of c tasks
	// by dependent rounding with marginals exactly p_i (the Exp3.M
	// selection semantics), resolves cross-SCN conflicts with the greedy
	// of Alg. 4 over p, and backfills freed beams by p. This keeps the
	// importance-weighted estimators (which divide by p_i) unbiased up to
	// conflict effects.
	DepRoundMode SelectionMode = iota
	// Race draws an exponential race per edge with rate p_i. Noisier than
	// DepRound (pairwise win odds are only proportional to p); kept for
	// the selection ablation.
	Race
	// Deterministic uses p_i directly as the greedy edge weight — the
	// literal reading of Alg. 4's input; pure exploitation, no sampling.
	Deterministic
)

// Config parameterises LFSC.
type Config struct {
	// SCNs is the number of small cell nodes M.
	SCNs int
	// Capacity is the per-slot beam budget c of each SCN.
	Capacity int
	// Alpha is the per-SCN minimum completed task threshold (1c).
	Alpha float64
	// Beta is the per-SCN resource capacity (1d).
	Beta float64
	// Cells is the number of context hypercubes (h_T)^{D_b}.
	Cells int
	// KMax is the bound K_m on per-SCN visible tasks per slot.
	KMax int
	// Horizon is the time horizon T used in the parameter schedule.
	Horizon int
	// Gamma, Eta, Delta override the Theorem-1 schedule when positive.
	Gamma, Eta, Delta float64
	// WeightDecay is the per-slot exponential forgetting rate ρ applied to
	// log-weights (logW ← (1−ρ)·logW, an Exp3.S-style drift toward
	// uniform). Without it, weights integrate the entire history: every
	// cell whose λ-adjusted drift was ever positive ratchets up to the
	// Exp3.M cap and stays, so the effective top set dilutes over a long
	// run and per-slot violations creep back up. With forgetting, the
	// ranking tracks the *recent* drift, giving a stable equilibrium (and
	// robustness to non-stationary rewards). Negative disables; zero
	// selects the default.
	WeightDecay float64
	// LambdaRate scales the multiplier step size relative to η (the
	// multiplier update uses η·LambdaRate). Zero selects the default.
	// Larger values make the constraint response faster at the cost of
	// larger oscillations around the dual optimum.
	LambdaRate float64
	// SlackPull is the asymmetry of the dual update: the rate at which
	// constraint slack (being safely inside the feasible region) pulls a
	// multiplier back down, relative to the rate at which violations push
	// it up. The violation metrics are hinges — only shortfall/excess
	// counts — so a symmetric (=1) ascent lets λ undershoot as soon as the
	// constraint is met and per-slot violations oscillate. 0 would be the
	// pure hinge subgradient (λ only ratchets up). Zero selects the
	// default; negative selects the pure hinge.
	SlackPull float64
	// Workers forces the number of goroutines used for the per-SCN
	// Decide/Observe computation: 1 runs strictly serially, larger values
	// bound the fan-out, 0 (default) sizes the parallelism to the slot.
	// Results are bit-identical for every setting — parallelism never
	// changes what is computed (each SCN owns its weights, multipliers,
	// RNG stream, and scratch arena).
	Workers int
	// Mode selects randomized or deterministic edge priorities.
	Mode SelectionMode
	// DisableCapping turns off Exp3.M weight capping (ablation A5).
	DisableCapping bool
	// DisableLagrangian freezes λ1 = λ2 = 0, reducing LFSC to a pure
	// constrained-blind Exp3.M (ablation A3).
	DisableLagrangian bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.SCNs <= 0:
		return fmt.Errorf("core: SCNs must be positive, got %d", c.SCNs)
	case c.Capacity <= 0:
		return fmt.Errorf("core: capacity must be positive, got %d", c.Capacity)
	case c.Cells <= 0:
		return fmt.Errorf("core: cells must be positive, got %d", c.Cells)
	case c.KMax <= 0:
		return fmt.Errorf("core: KMax must be positive, got %d", c.KMax)
	case c.Horizon <= 0:
		return fmt.Errorf("core: horizon must be positive, got %d", c.Horizon)
	case c.Alpha < 0 || c.Beta < 0:
		return fmt.Errorf("core: alpha/beta must be non-negative")
	case c.Gamma < 0 || c.Gamma > 1:
		return fmt.Errorf("core: gamma %v outside [0,1]", c.Gamma)
	case c.Eta < 0 || c.Delta < 0:
		return fmt.Errorf("core: eta/delta must be non-negative")
	case c.Workers < 0:
		return fmt.Errorf("core: workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// Schedule returns the effective (γ, η, δ) after applying Theorem 1's
// defaults for unset values:
//
//	γ = min(1, sqrt(K·ln(K/c) / ((e−1)·c·T)))   (Exp3.M optimal mixing)
//	η = γ/F   where F is the number of hypercubes
//	δ = η/√T
//
// The learning rate divides by the number of hypercubes F rather than the
// task bound K: LFSC's weights (and hence its importance-weighted loss
// estimates) live on the F context cells, so F is the effective arm count
// for the exponential update, while K governs the exploration mixing over
// the per-slot task list. With F ≪ K (paper: 27 cells vs up to 200 tasks)
// the K-scaled rate is an order of magnitude too conservative to converge
// within the paper's horizon.
func (c Config) Schedule() (gamma, eta, delta float64) {
	gamma = c.Gamma
	if gamma == 0 {
		k := float64(c.KMax)
		cc := float64(c.Capacity)
		ratio := k / cc
		if ratio < math.E {
			ratio = math.E // keep the log positive for K close to c
		}
		gamma = math.Min(1, math.Sqrt(k*math.Log(ratio)/((math.E-1)*cc*float64(c.Horizon))))
	}
	eta = c.Eta
	if eta == 0 {
		eta = gamma / float64(c.Cells)
	}
	delta = c.Delta
	if delta == 0 {
		delta = eta / math.Sqrt(float64(c.Horizon))
	}
	return gamma, eta, delta
}

// scnState is the per-SCN learner state.
//
// Weights are stored in log space: over a long horizon the exponential
// update drives weight ratios past float64's dynamic range (a 10⁴-slot run
// at paper scale reaches ratios of 1e30+), and once tail weights underflow
// to zero their relative order — which ranks the candidates that fill most
// of the beam budget — is destroyed. The Exp3.M probability formula and the
// capping fixed point depend only on weight ratios, so shifting by the
// maximum log-weight before exponentiating is exact.
//
// Everything below the learner state is the SCN's private scratch arena:
// buffers sized once (from KMax, Cells, Capacity) and reset by re-slicing,
// never reallocated in steady state. Only the goroutine processing SCN m
// inside Decide/Observe may touch SCN m's arena — that ownership is what
// makes the parallel per-SCN loop race-free and bit-identical to serial
// execution.
type scnState struct {
	logW    []float64 // log-weights, one per hypercube
	lambda1 float64   // multiplier for the QoS floor (1c)
	lambda2 float64   // multiplier for the resource ceiling (1d)
	// r is this SCN's private random stream (derived from the policy
	// stream by SCN index), so per-SCN computation is independent of
	// iteration order and safe to run in parallel.
	r *rng.Stream

	// Per-slot scratch, written by Decide and read by Observe:
	probs      []float64 // selection probability per visible-task position
	capped     []bool    // capped[f] ⇔ hypercube f ∈ S' this slot
	cappedList []int     // hypercubes currently flagged in capped

	// Decide-internal scratch:
	w      []float64              // Exp3.M weight buffer (one per task)
	sorted []float64              // solveCap descending order statistics
	suffix []float64              // solveCap suffix sums (len(w)+1)
	edges  []assign.Edge          // this SCN's bipartite edges
	dep    assign.DepRoundScratch // DepRound working memory

	// Observe-internal scratch: per-hypercube accumulator pools for the
	// importance-weighted estimates (the former map[int]*cellAcc), plus
	// the list of cells touched this slot for O(touched) iteration/reset.
	accG, accV, accQ []float64
	accN             []int
	touched          []int
}

// newSCNState builds SCN state with the arena pre-sized from the config.
func newSCNState(cfg Config, r *rng.Stream) *scnState {
	return &scnState{
		logW:       make([]float64, cfg.Cells),
		r:          r,
		probs:      make([]float64, 0, cfg.KMax),
		capped:     make([]bool, cfg.Cells),
		cappedList: make([]int, 0, cfg.Cells),
		w:          make([]float64, 0, cfg.KMax),
		sorted:     make([]float64, 0, cfg.KMax),
		suffix:     make([]float64, 0, cfg.KMax+1),
		edges:      make([]assign.Edge, 0, cfg.KMax),
		accG:       make([]float64, cfg.Cells),
		accV:       make([]float64, cfg.Cells),
		accQ:       make([]float64, cfg.Cells),
		accN:       make([]int, cfg.Cells),
		touched:    make([]int, 0, cfg.Cells),
	}
}

// resetSlot clears the cross-call scratch (probabilities and the capped
// set) at the start of a new Decide.
func (st *scnState) resetSlot() {
	st.probs = st.probs[:0]
	for _, f := range st.cappedList {
		st.capped[f] = false
	}
	st.cappedList = st.cappedList[:0]
}

// setCapped flags hypercube f as a member of S' this slot.
func (st *scnState) setCapped(f int) {
	if !st.capped[f] {
		st.capped[f] = true
		st.cappedList = append(st.cappedList, f)
	}
}

// LFSC implements policy.Policy.
type LFSC struct {
	cfg               Config
	gamma, eta, delta float64
	lambdaRate        float64
	decay             float64
	slackPull         float64
	scns              []*scnState
	r                 *rng.Stream

	// Policy-global scratch, owned by the single goroutine driving
	// Decide/Observe (the per-SCN workers only write their own index of
	// allProbs/perSCNEdges):
	allProbs    [][]float64 // per-SCN views into each scnState's probs
	perSCNEdges [][]assign.Edge
	edges       []assign.Edge // concatenated edge list for the greedy
	assigned    []int         // assignment buffer returned by Decide
	greedy      assign.GreedyScratch
	counts      []int          // backfill per-SCN beam counters
	cands       []backfillCand // backfill candidate buffer
	execByTask  []int32        // slot-global task index → fb.Execs index
}

// New constructs an LFSC policy. The stream drives the randomized edge
// priorities only; all learning state is deterministic given the feedback.
func New(cfg Config, r *rng.Stream) (*LFSC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &LFSC{cfg: cfg, r: r}
	l.gamma, l.eta, l.delta = cfg.Schedule()
	l.lambdaRate = cfg.LambdaRate
	if l.lambdaRate == 0 {
		l.lambdaRate = defaultLambdaRate
	}
	l.decay = cfg.WeightDecay
	if l.decay == 0 {
		l.decay = defaultWeightDecay
	}
	if l.decay < 0 {
		l.decay = 0
	}
	l.slackPull = cfg.SlackPull
	if l.slackPull == 0 {
		l.slackPull = defaultSlackPull
	}
	if l.slackPull < 0 {
		l.slackPull = 0
	}
	for m := 0; m < cfg.SCNs; m++ {
		l.scns = append(l.scns, newSCNState(cfg, r.Derive(uint64(m))))
	}
	l.allProbs = make([][]float64, cfg.SCNs)
	l.perSCNEdges = make([][]assign.Edge, cfg.SCNs)
	l.edges = make([]assign.Edge, 0, cfg.SCNs*cfg.Capacity)
	l.counts = make([]int, cfg.SCNs)
	l.cands = make([]backfillCand, 0, cfg.KMax)
	return l, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, r *rng.Stream) *LFSC {
	l, err := New(cfg, r)
	if err != nil {
		panic(err)
	}
	return l
}

// Name implements policy.Policy.
func (l *LFSC) Name() string { return "LFSC" }

// Gamma returns the effective exploration rate (for reports).
func (l *LFSC) Gamma() float64 { return l.gamma }

// Multipliers returns SCN m's current Lagrange multipliers (λ1, λ2).
func (l *LFSC) Multipliers(m int) (float64, float64) {
	return l.scns[m].lambda1, l.scns[m].lambda2
}

// Weights returns SCN m's hypercube log-weights (for inspection). Only
// differences are meaningful: the selection probability of a cell's tasks
// is monotone in its log-weight.
func (l *LFSC) Weights(m int) []float64 {
	return append([]float64(nil), l.scns[m].logW...)
}

// Decide implements policy.Policy: Alg. 2 per SCN, then Alg. 4 globally.
//
// The per-SCN probability computation and candidate sampling are
// independent (each SCN has private weights, multipliers, RNG stream, and
// scratch arena), so they run on all cores; only the collaborative greedy
// assignment is a global step. Results are bit-identical to the sequential
// execution.
//
// The returned assignment aliases a policy-owned buffer: it is valid until
// the next Decide call, which matches the simulator's slot protocol
// (Decide → execute → Observe, then the next slot).
func (l *LFSC) Decide(view *policy.SlotView) []int {
	if len(view.SCNs) > len(l.allProbs) {
		// Defensive: a view wider than the configured SCN count.
		l.allProbs = make([][]float64, len(view.SCNs))
		l.perSCNEdges = make([][]assign.Edge, len(view.SCNs))
	}
	if workers := l.workersFor(view); workers == 1 {
		// Serial fast path: no goroutine fan-out, no closure — the
		// steady-state Decide allocates nothing.
		for m := range view.SCNs {
			l.decideSCN(view, m)
		}
	} else {
		parallel.For(len(view.SCNs), workers, func(m int) { l.decideSCN(view, m) })
	}
	l.edges = l.edges[:0]
	for _, edges := range l.perSCNEdges[:len(view.SCNs)] {
		l.edges = append(l.edges, edges...)
	}
	l.assigned = assign.GreedyInto(l.assigned, &l.greedy, l.edges, l.cfg.SCNs, view.NumTasks, l.cfg.Capacity)
	if l.cfg.Mode == DepRoundMode {
		l.backfill(view, l.allProbs, l.assigned)
	}
	return l.assigned
}

// decideSCN runs Alg. 2 for one SCN: probabilities, then candidate edges.
// It touches only SCN m's arena and the m-th slots of the policy-global
// views, so any number of decideSCN calls for distinct SCNs may run
// concurrently.
func (l *LFSC) decideSCN(view *policy.SlotView, m int) {
	st := l.scns[m]
	st.resetSlot()
	l.allProbs[m] = nil
	l.perSCNEdges[m] = nil
	tasks := view.SCNs[m].Tasks
	if len(tasks) == 0 {
		return
	}
	probs := l.probabilities(st, tasks)
	l.allProbs[m] = probs
	st.edges = st.edges[:0]
	switch l.cfg.Mode {
	case DepRoundMode:
		// Sample the SCN's candidate set with marginals exactly p.
		for _, i := range assign.DepRoundInto(&st.dep, probs, st.r) {
			tv := tasks[i]
			st.edges = append(st.edges, assign.Edge{SCN: m, Task: tv.Index, W: probs[i]})
		}
	case Race:
		for i, tv := range tasks {
			st.edges = append(st.edges, assign.Edge{SCN: m, Task: tv.Index, W: probs[i] / st.r.Exponential(1)})
		}
	case Deterministic:
		for i, tv := range tasks {
			st.edges = append(st.edges, assign.Edge{SCN: m, Task: tv.Index, W: probs[i]})
		}
	}
	l.perSCNEdges[m] = st.edges
}

// workersFor sizes the parallelism to the slot: tiny slots are cheaper to
// process serially than to fan out. A positive Config.Workers overrides the
// heuristic.
func (l *LFSC) workersFor(view *policy.SlotView) int {
	if l.cfg.Workers > 0 {
		return l.cfg.Workers
	}
	total := 0
	for m := range view.SCNs {
		total += len(view.SCNs[m].Tasks)
	}
	if total < 256 {
		return 1
	}
	return 0 // default worker count
}

// backfillCand is one backfill candidate (an unassigned visible task).
type backfillCand struct {
	idx  int
	p    float64
	logW float64
}

// cmpBackfill ranks candidates by probability; probabilities tie when
// weights underflow (exploration floor) or saturate (capped at 1), so the
// exact log-weight breaks ties before the deterministic index.
func cmpBackfill(a, b backfillCand) int {
	switch {
	case a.p > b.p:
		return -1
	case a.p < b.p:
		return 1
	case a.logW > b.logW:
		return -1
	case a.logW < b.logW:
		return 1
	default:
		return a.idx - b.idx
	}
}

// backfill tops up SCNs that lost sampled candidates to cross-SCN conflicts:
// freed beams take the highest-probability unassigned visible tasks. This
// mirrors the paper's cascade discussion — a SCN whose optimal task went to
// a peer falls back to its next best choice rather than idling the beam.
func (l *LFSC) backfill(view *policy.SlotView, allProbs [][]float64, assigned []int) {
	counts := l.counts[:0]
	for m := 0; m < l.cfg.SCNs; m++ {
		counts = append(counts, 0)
	}
	l.counts = counts
	for _, m := range assigned {
		if m >= 0 {
			counts[m]++
		}
	}
	for m := range view.SCNs {
		free := l.cfg.Capacity - counts[m]
		if free <= 0 {
			continue
		}
		st := l.scns[m]
		tasks := view.SCNs[m].Tasks
		cands := l.cands[:0]
		for i, tv := range tasks {
			if assigned[tv.Index] == -1 {
				cands = append(cands, backfillCand{idx: tv.Index, p: allProbs[m][i], logW: st.logW[tv.Cell]})
			}
		}
		l.cands = cands
		slices.SortFunc(cands, cmpBackfill)
		for _, c := range cands {
			if free == 0 {
				break
			}
			if assigned[c.idx] != -1 {
				continue
			}
			assigned[c.idx] = m
			free--
		}
	}
}

// probabilities runs Exp3.M weight capping and the mixing formula for one
// SCN's visible task list. The returned slice is st's probs arena (one
// entry per task position, valid until the next Decide); capped hypercubes
// (the set S') are flagged in st.capped.
func (l *LFSC) probabilities(st *scnState, tasks []policy.TaskView) []float64 {
	k := len(tasks)
	c := l.cfg.Capacity
	probs := growFloats(&st.probs, k)
	if k <= c {
		// Fewer tasks than beams: everything can be served.
		for i := range probs {
			probs[i] = 1
		}
		return probs
	}
	// Shift log-weights by the slot maximum before exponentiating; both the
	// mixing formula and the capping fixed point are scale-invariant. The
	// shifted exponent is floored so no weight underflows to exact zero:
	// with an all-zero tail the capping fixed point degenerates to ε = 0
	// and the mixing denominator vanishes. A floor of e^-60 keeps 60 nats
	// of ranking range — far beyond what selection can distinguish anyway.
	const minLogDiff = -60.0
	maxLog := math.Inf(-1)
	for _, tv := range tasks {
		if lw := st.logW[tv.Cell]; lw > maxLog {
			maxLog = lw
		}
	}
	w := growFloats(&st.w, k)
	sum := 0.0
	maxW := 0.0
	for i, tv := range tasks {
		d := st.logW[tv.Cell] - maxLog
		if d < minLogDiff {
			d = minLogDiff
		}
		w[i] = math.Exp(d)
		sum += w[i]
		if w[i] > maxW {
			maxW = w[i]
		}
	}
	// τ = (1/c − γ/K)/(1−γ): the weight-share above which p would exceed 1.
	tau := (1/float64(c) - l.gamma/float64(k)) / (1 - l.gamma)
	eps := math.Inf(1)
	if !l.cfg.DisableCapping && tau > 0 && maxW >= tau*sum {
		eps = solveCapInto(&st.sorted, &st.suffix, w, tau)
		for i, tv := range tasks {
			if w[i] >= eps {
				w[i] = eps
				st.setCapped(tv.Cell)
			}
		}
		sum = 0
		for _, v := range w {
			sum += v
		}
	}
	for i := range probs {
		p := float64(c) * ((1-l.gamma)*w[i]/sum + l.gamma/float64(k))
		if p > 1 {
			p = 1 // numerical safety; capping guarantees ≤ 1 analytically
		}
		if p < 0 {
			p = 0
		}
		probs[i] = p
	}
	return probs
}

// growFloats re-slices *buf to length n, reallocating only when the arena
// capacity is exceeded (first slots of a run, or a workload spike).
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n, n+n/2)
	}
	*buf = (*buf)[:n]
	return *buf
}

// cmpFloatDesc orders float64s descending (weights here are never NaN).
func cmpFloatDesc(a, b float64) int {
	switch {
	case a > b:
		return -1
	case a < b:
		return 1
	default:
		return 0
	}
}

// solveCap finds ε with ε = τ·Σ_i min(w_i, ε) (the Exp3.M cap fixed point).
// With the top-j weights capped, ε_j = τ·rest_j/(1−jτ); the valid j is the
// one with w_(j) ≥ ε_j ≥ w_(j+1) in the descending order statistics.
func solveCap(w []float64, tau float64) float64 {
	var sorted, suffix []float64
	return solveCapInto(&sorted, &suffix, w, tau)
}

// solveCapInto is solveCap with caller-owned scratch for the order
// statistics and suffix sums (LFSC passes the SCN's arena).
func solveCapInto(sortedBuf, suffixBuf *[]float64, w []float64, tau float64) float64 {
	sorted := append((*sortedBuf)[:0], w...)
	*sortedBuf = sorted
	slices.SortFunc(sorted, cmpFloatDesc)
	// rest_j (the tail sum Σ_{i>j} w_(i)) is accumulated backward as a
	// suffix sum: subtracting head weights from the total instead would
	// cancel catastrophically when the tail is many orders of magnitude
	// below the head (log-weights legitimately span e^±60 here).
	suffix := growFloats(suffixBuf, len(sorted)+1)
	suffix[len(sorted)] = 0
	for i := len(sorted) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + sorted[i]
	}
	for j := 1; j <= len(sorted); j++ {
		rest := suffix[j]
		denom := 1 - float64(j)*tau
		if denom <= 0 {
			break
		}
		eps := tau * rest / denom
		lower := 0.0
		if j < len(sorted) {
			lower = sorted[j]
		}
		// Validity window with relative tolerance.
		if eps <= sorted[j-1]*(1+1e-12) && eps >= lower*(1-1e-12) {
			return eps
		}
	}
	// Should be unreachable for K > c (existence is proven in the Exp3.M
	// analysis); fall back to the identity cap (no weight modified) and
	// rely on the final per-task clamp p ≤ 1.
	return sorted[0]
}

// defaultSlackPull is the default dual-update asymmetry (see
// Config.SlackPull).
const defaultSlackPull = 0.25

// defaultWeightDecay is the default forgetting rate ρ (see
// Config.WeightDecay); chosen by the calibration sweep in EXPERIMENTS.md.
const defaultWeightDecay = 1e-3

// defaultLambdaRate is the default multiplier step scale (see
// Config.LambdaRate); chosen by the calibration sweep in EXPERIMENTS.md:
// rate 1 responds too slowly in the exploration phase, rate ≥ 10
// oscillates around the dual optimum late in the run.
const defaultLambdaRate = 3.0

// maxExponent clamps weight-update exponents so a long streak of large
// importance-weighted estimates cannot overflow float64 in one step.
const maxExponent = 30.0

// Observe implements policy.Policy: Alg. 3 for every SCN, in parallel
// (each SCN only touches its own weights, multipliers and scratch).
func (l *LFSC) Observe(view *policy.SlotView, assigned []int, fb *policy.Feedback) {
	// Index executions by slot-global task for O(1) lookup: a task executes
	// on at most one SCN per slot, so one flat table replaces the former
	// per-SCN maps. Built serially before the fan-out, read-only inside it.
	if cap(l.execByTask) < view.NumTasks {
		l.execByTask = make([]int32, view.NumTasks, view.NumTasks+view.NumTasks/2)
	}
	l.execByTask = l.execByTask[:view.NumTasks]
	for i := range l.execByTask {
		l.execByTask[i] = -1
	}
	for i, e := range fb.Execs {
		l.execByTask[e.Task] = int32(i)
	}
	if workers := l.workersFor(view); workers == 1 {
		for m := range view.SCNs {
			l.observeSCN(view, fb, m)
		}
	} else {
		parallel.For(len(view.SCNs), workers, func(m int) { l.observeSCN(view, fb, m) })
	}
}

// observeSCN runs Alg. 3 for one SCN. Like decideSCN it touches only SCN
// m's arena (plus the read-only exec index), so distinct SCNs may run
// concurrently.
func (l *LFSC) observeSCN(view *policy.SlotView, fb *policy.Feedback, m int) {
	st := l.scns[m]
	tasks := view.SCNs[m].Tasks
	if len(tasks) == 0 {
		return
	}
	// Per-hypercube sums of the importance-weighted estimates and
	// visible-task counts (Alg. 3 lines 2-8), accumulated in the arena's
	// cell pools; touched lists the cells with at least one visible task.
	for _, f := range st.touched {
		st.accG[f], st.accV[f], st.accQ[f] = 0, 0, 0
		st.accN[f] = 0
	}
	st.touched = st.touched[:0]
	var completed, consumed float64
	for i, tv := range tasks {
		f := tv.Cell
		if st.accN[f] == 0 {
			st.touched = append(st.touched, f)
		}
		st.accN[f]++
		ei := l.execByTask[tv.Index]
		if ei < 0 {
			continue // unchosen task: estimate contributes 0
		}
		e := fb.Execs[ei]
		if e.SCN != m {
			continue // executed by a peer SCN: nothing observed here
		}
		p := st.probs[i]
		if p <= 0 {
			continue // defensive: cannot importance-weight a 0-prob pick
		}
		st.accG[f] += e.Compound() / p
		st.accV[f] += e.V / p
		st.accQ[f] += e.Q / p
		completed += e.V
		consumed += e.Q
	}
	// Weight update (Alg. 3 lines 9-14): capped cells are skipped.
	// Log-space: the multiplicative exp(·) becomes an addition.
	lam1, lam2 := st.lambda1, st.lambda2
	if l.cfg.DisableLagrangian {
		lam1, lam2 = 0, 0
	}
	for _, f := range st.touched {
		if st.capped[f] {
			continue
		}
		n := float64(st.accN[f])
		gHat := st.accG[f] / n
		vHat := st.accV[f] / n
		qHat := st.accQ[f] / n
		exp := l.eta * (gHat + lam1*vHat - lam2*qHat)
		if exp > maxExponent {
			exp = maxExponent
		}
		if exp < -maxExponent {
			exp = -maxExponent
		}
		st.logW[f] += exp
	}
	if l.decay > 0 {
		for f := range st.logW {
			st.logW[f] *= 1 - l.decay
		}
	}
	// Multiplier update (Alg. 3 lines 15-17): projected gradient ascent
	// with decay; slack normalised by the beam budget so the λ·v̂ and
	// λ·q̂ exponent terms share ĝ's scale.
	if !l.cfg.DisableLagrangian {
		// The violation metrics are hinges (only shortfall/excess
		// counts), so the dual ascent is asymmetric: slack beyond the
		// constraint pulls λ down at a fraction of the violation rate.
		// A symmetric (linear-constraint) update makes λ undershoot as
		// soon as the constraint is met, selection drifts back toward
		// raw reward, and per-slot violations oscillate late in the
		// run instead of decreasing as the paper reports.
		g1 := l.cfg.Alpha - completed
		g2 := consumed - l.cfg.Beta
		if g1 < 0 {
			g1 *= l.slackPull
		}
		if g2 < 0 {
			g2 *= l.slackPull
		}
		etaL := l.eta * l.lambdaRate
		st.lambda1 = project(st.lambda1, etaL, l.delta, g1)
		st.lambda2 = project(st.lambda2, etaL, l.delta, g2)
	}
}

// project applies λ ← [(1−ηδ)λ + η·grad]₊ with the theory's cap λ ≤ 1/δ.
func project(lambda, eta, delta, grad float64) float64 {
	l := (1-eta*delta)*lambda + eta*grad
	if l < 0 {
		return 0
	}
	if delta > 0 && l > 1/delta {
		return 1 / delta
	}
	return l
}
