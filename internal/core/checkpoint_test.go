package core

import (
	"bytes"
	"strings"
	"testing"

	"lfsc/internal/rng"
)

func trainedLFSC(t *testing.T, seed uint64) *LFSC {
	t.Helper()
	cfg := testConfig()
	l := MustNew(cfg, rng.New(seed))
	r := rng.New(seed + 1)
	truth := map[int][3]float64{
		0: {0.9, 0.9, 1.1}, 1: {0.2, 0.4, 1.8},
		2: {0.6, 0.7, 1.3}, 3: {0.4, 0.2, 1.9},
	}
	for t0 := 0; t0 < 100; t0++ {
		view := makeView(t0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
		runSlot(l, view, truth, r)
	}
	return l
}

func TestCheckpointRoundTrip(t *testing.T) {
	l := trainedLFSC(t, 30)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := MustNew(testConfig(), rng.New(31))
	if err := fresh.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < testConfig().SCNs; m++ {
		wa, wb := l.Weights(m), fresh.Weights(m)
		for f := range wa {
			if wa[f] != wb[f] {
				t.Fatalf("weight [%d][%d] differs after restore", m, f)
			}
		}
		la1, la2 := l.Multipliers(m)
		lb1, lb2 := fresh.Multipliers(m)
		if la1 != lb1 || la2 != lb2 {
			t.Fatalf("multipliers differ after restore")
		}
	}
}

func TestCheckpointRestoredPolicyBehavesIdentically(t *testing.T) {
	l := trainedLFSC(t, 32)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Restore into a policy with the SAME RNG seed as a copy of l would
	// have; decisions must coincide when the streams coincide.
	a := MustNew(testConfig(), rng.New(77))
	b := MustNew(testConfig(), rng.New(77))
	if err := a.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := b.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	view := makeView(0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
	da, db := a.Decide(view), b.Decide(view)
	for i := range da {
		if da[i] != db[i] {
			t.Fatal("restored twins diverged")
		}
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	l := trainedLFSC(t, 33)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := testConfig()
	other.SCNs = 3
	wrong := MustNew(other, rng.New(1))
	if err := wrong.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestCheckpointRejectsCorrupt(t *testing.T) {
	l := MustNew(testConfig(), rng.New(34))
	cases := []string{
		"not json",
		`{"version":99}`,
		`{"version":1,"scns":2,"cells":4,"log_weights":[[1,2,3,4]],"lambda1":[0,0],"lambda2":[0,0]}`,
		`{"version":1,"scns":2,"cells":4,"log_weights":[[1,2,3],[1,2,3,4]],"lambda1":[0,0],"lambda2":[0,0]}`,
		`{"version":1,"scns":2,"cells":4,"log_weights":[[1,2,3,4],[1,2,3,4]],"lambda1":[-1,0],"lambda2":[0,0]}`,
	}
	for i, c := range cases {
		if err := l.Load(strings.NewReader(c)); err == nil {
			t.Fatalf("corrupt checkpoint %d accepted", i)
		}
	}
	// Failed loads must not partially mutate state.
	w := l.Weights(0)
	for _, v := range w {
		if v != 0 {
			t.Fatal("failed load mutated weights")
		}
	}
}
