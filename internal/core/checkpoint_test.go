package core

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"lfsc/internal/policy"
	"lfsc/internal/rng"
)

func trainedLFSC(t *testing.T, seed uint64) *LFSC {
	t.Helper()
	cfg := testConfig()
	l := MustNew(cfg, rng.New(seed))
	r := rng.New(seed + 1)
	truth := map[int][3]float64{
		0: {0.9, 0.9, 1.1}, 1: {0.2, 0.4, 1.8},
		2: {0.6, 0.7, 1.3}, 3: {0.4, 0.2, 1.9},
	}
	for t0 := 0; t0 < 100; t0++ {
		view := makeView(t0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
		runSlot(l, view, truth, r)
	}
	return l
}

func TestCheckpointRoundTrip(t *testing.T) {
	l := trainedLFSC(t, 30)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := MustNew(testConfig(), rng.New(31))
	if err := fresh.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < testConfig().SCNs; m++ {
		wa, wb := l.Weights(m), fresh.Weights(m)
		for f := range wa {
			if wa[f] != wb[f] {
				t.Fatalf("weight [%d][%d] differs after restore", m, f)
			}
		}
		la1, la2 := l.Multipliers(m)
		lb1, lb2 := fresh.Multipliers(m)
		if la1 != lb1 || la2 != lb2 {
			t.Fatalf("multipliers differ after restore")
		}
	}
}

func TestCheckpointRestoredPolicyBehavesIdentically(t *testing.T) {
	l := trainedLFSC(t, 32)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Restore into a policy with the SAME RNG seed as a copy of l would
	// have; decisions must coincide when the streams coincide.
	a := MustNew(testConfig(), rng.New(77))
	b := MustNew(testConfig(), rng.New(77))
	if err := a.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := b.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	view := makeView(0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
	da, db := a.Decide(view), b.Decide(view)
	for i := range da {
		if da[i] != db[i] {
			t.Fatal("restored twins diverged")
		}
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	l := trainedLFSC(t, 33)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := testConfig()
	other.SCNs = 3
	wrong := MustNew(other, rng.New(1))
	if err := wrong.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestCheckpointRejectsCorrupt(t *testing.T) {
	l := MustNew(testConfig(), rng.New(34))
	cases := []string{
		"not json",
		`{"version":99}`,
		`{"version":1,"scns":2,"cells":4,"log_weights":[[1,2,3,4]],"lambda1":[0,0],"lambda2":[0,0]}`,
		`{"version":1,"scns":2,"cells":4,"log_weights":[[1,2,3],[1,2,3,4]],"lambda1":[0,0],"lambda2":[0,0]}`,
		`{"version":1,"scns":2,"cells":4,"log_weights":[[1,2,3,4],[1,2,3,4]],"lambda1":[-1,0],"lambda2":[0,0]}`,
	}
	for i, c := range cases {
		if err := l.Load(strings.NewReader(c)); err == nil {
			t.Fatalf("corrupt checkpoint %d accepted", i)
		}
	}
	// Failed loads must not partially mutate state.
	w := l.Weights(0)
	for _, v := range w {
		if v != 0 {
			t.Fatal("failed load mutated weights")
		}
	}
}

func TestCheckpointRejectsCorruptV2(t *testing.T) {
	l := trainedLFSC(t, 35)
	before := snapshotState(l)
	cases := []string{
		// negative slot counter
		`{"version":2,"scns":2,"cells":4,"t":-1,"log_weights":[[0,0,0,0],[0,0,0,0]],"lambda1":[0,0],"lambda2":[0,0],"rng":[[1,3,5],[1,3,5]]}`,
		// missing RNG states
		`{"version":2,"scns":2,"cells":4,"t":5,"log_weights":[[0,0,0,0],[0,0,0,0]],"lambda1":[0,0],"lambda2":[0,0]}`,
		// wrong RNG state count
		`{"version":2,"scns":2,"cells":4,"t":5,"log_weights":[[0,0,0,0],[0,0,0,0]],"lambda1":[0,0],"lambda2":[0,0],"rng":[[1,3,5]]}`,
		// even PCG increment — structurally impossible stream state
		`{"version":2,"scns":2,"cells":4,"t":5,"log_weights":[[0,0,0,0],[0,0,0,0]],"lambda1":[0,0],"lambda2":[0,0],"rng":[[1,3,5],[1,2,5]]}`,
		// v1 checkpoints must not smuggle RNG states
		`{"version":1,"scns":2,"cells":4,"log_weights":[[0,0,0,0],[0,0,0,0]],"lambda1":[0,0],"lambda2":[0,0],"rng":[[1,3,5],[1,3,5]]}`,
		// out-of-range float literal
		`{"version":1,"scns":2,"cells":4,"log_weights":[[1e999,0,0,0],[0,0,0,0]],"lambda1":[0,0],"lambda2":[0,0]}`,
		// truncated mid-object
		`{"version":2,"scns":2,`,
	}
	for i, c := range cases {
		if err := l.Load(strings.NewReader(c)); err == nil {
			t.Fatalf("corrupt v2 checkpoint %d accepted", i)
		}
		if !statesEqual(before, snapshotState(l)) {
			t.Fatalf("corrupt checkpoint %d partially mutated policy state", i)
		}
	}
}

// snapshotState captures every externally observable piece of learner
// state touched by Load, for no-partial-mutation assertions.
type lfscState struct {
	weights [][]float64
	lambda1 []float64
	lambda2 []float64
	slots   int
}

func snapshotState(l *LFSC) lfscState {
	var s lfscState
	for m := 0; m < l.cfg.SCNs; m++ {
		s.weights = append(s.weights, append([]float64(nil), l.Weights(m)...))
		l1, l2 := l.Multipliers(m)
		s.lambda1 = append(s.lambda1, l1)
		s.lambda2 = append(s.lambda2, l2)
	}
	s.slots = l.SlotsSeen()
	return s
}

func statesEqual(a, b lfscState) bool {
	if a.slots != b.slots || len(a.weights) != len(b.weights) {
		return false
	}
	for m := range a.weights {
		if a.lambda1[m] != b.lambda1[m] || a.lambda2[m] != b.lambda2[m] {
			return false
		}
		for f := range a.weights[m] {
			if a.weights[m][f] != b.weights[m][f] {
				return false
			}
		}
	}
	return true
}

func TestCheckpointCarriesSlotCounter(t *testing.T) {
	l := trainedLFSC(t, 36)
	if got := l.SlotsSeen(); got != 100 {
		t.Fatalf("trained learner saw %d slots, want 100", got)
	}
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := MustNew(testConfig(), rng.New(999))
	if err := fresh.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := fresh.SlotsSeen(); got != 100 {
		t.Fatalf("restored learner reports %d slots, want 100", got)
	}
}

func TestCheckpointV1BackwardCompatible(t *testing.T) {
	l := trainedLFSC(t, 37)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Rewrite the v2 checkpoint as the v1 format: same learned state, no
	// slot counter, no RNG streams.
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = 1
	delete(m, "t")
	delete(m, "rng")
	v1, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	fresh := MustNew(testConfig(), rng.New(38))
	if err := fresh.Load(bytes.NewReader(v1)); err != nil {
		t.Fatalf("v1 checkpoint rejected: %v", err)
	}
	for scn := 0; scn < testConfig().SCNs; scn++ {
		wa, wb := l.Weights(scn), fresh.Weights(scn)
		for f := range wa {
			if wa[f] != wb[f] {
				t.Fatalf("weight [%d][%d] differs after v1 restore", scn, f)
			}
		}
	}
	if got := fresh.SlotsSeen(); got != 0 {
		t.Fatalf("v1 restore set slot counter to %d, want 0", got)
	}
}

// TestCheckpointSerializesOnlyLearnedState pins the checkpoint surface:
// the incremental engine carries derived caches in scnState (per-cell
// census, probability cache, the persistent cap order) that are rebuilt
// from logW on the first Decide after Load and must NEVER travel through a
// checkpoint — a new serialized key here is a format change that breaks
// pre-PR artifacts.
func TestCheckpointSerializesOnlyLearnedState(t *testing.T) {
	l := trainedLFSC(t, 50)
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &keys); err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{
		"version": true, "scns": true, "cells": true, "t": true,
		"log_weights": true, "lambda1": true, "lambda2": true, "rng": true,
	}
	for k := range keys {
		if !allowed[k] {
			t.Fatalf("checkpoint serialized unexpected key %q — derived caches must be rebuilt on Load, not stored", k)
		}
	}
}

// preIncrementalV2Checkpoint is a v2 checkpoint literal exactly as the
// engine before the incremental-maintenance rebuild wrote it (same format:
// learned state only). Shape matches testConfig (2 SCNs × 4 cells); the
// RNG triples are structurally valid PCG states (odd increments).
const preIncrementalV2Checkpoint = `{
  "version": 2, "scns": 2, "cells": 4, "t": 57,
  "log_weights": [[0.25, -1.5, 3.0, 0.125], [1.0, 0.5, -0.75, 2.25]],
  "lambda1": [0.1, 0],
  "lambda2": [0, 0.2],
  "rng": [[81985529216486895, 1442695040888963407, 42], [12345678901234567, 99, 7]]
}`

// TestCheckpointPreIncrementalV2Restores guards backward compatibility:
// a checkpoint written before this PR (no cache fields whatsoever) must
// restore into the incremental engine and immediately decide slots — the
// census, probability cache, and persistent cap order are rebuilt from the
// restored logW on the next Decide.
func TestCheckpointPreIncrementalV2Restores(t *testing.T) {
	l := MustNew(testConfig(), rng.New(51))
	// Dirty the engine's caches first so the restore cannot lean on
	// fresh-constructed state.
	r := rng.New(52)
	truth := map[int][3]float64{0: {0.9, 0.9, 1.1}, 1: {0.2, 0.4, 1.8}, 2: {0.6, 0.7, 1.3}, 3: {0.4, 0.2, 1.9}}
	for t0 := 0; t0 < 20; t0++ {
		runSlot(l, makeView(t0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}}), truth, r)
	}
	if err := l.Load(strings.NewReader(preIncrementalV2Checkpoint)); err != nil {
		t.Fatalf("pre-incremental v2 checkpoint rejected: %v", err)
	}
	if got := l.SlotsSeen(); got != 57 {
		t.Fatalf("restored slot counter %d, want 57", got)
	}
	wantW := [][]float64{{0.25, -1.5, 3.0, 0.125}, {1.0, 0.5, -0.75, 2.25}}
	for m := range wantW {
		got := l.Weights(m)
		for f := range wantW[m] {
			if got[f] != wantW[m][f] {
				t.Fatalf("restored weight [%d][%d] = %x, want %x", m, f, got[f], wantW[m][f])
			}
		}
	}
	// The engine must be immediately usable: a post-restore slot exercises
	// the cache rebuild (census, cap order repair, probabilities).
	view := makeView(57, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
	assigned := runSlot(l, view, truth, r)
	if err := policy.ValidateAssignment(view, assigned, testConfig().Capacity); err != nil {
		t.Fatalf("post-restore decision invalid: %v", err)
	}
}

// driftTruth is a time-varying outcome table: utilities, completion
// probabilities, and costs oscillate slowly so the learner keeps
// re-weighting throughout the run (the "reward drift" regime).
func driftTruth(t0 int) map[int][3]float64 {
	s := 0.5 + 0.4*math.Sin(float64(t0)/17)
	return map[int][3]float64{
		0: {0.9 * s, 0.9, 1.1},
		1: {0.2 + 0.3*s, 0.4, 1.8},
		2: {0.6, 0.5 + 0.4*s, 1.3},
		3: {0.4, 0.2, 1.2 + 0.5*s},
	}
}

// TestCheckpointResumeBitIdenticalUnderDrift is the core determinism
// guarantee the serving daemon's kill-and-resume rests on: Save at slot
// 100, restore into a learner constructed with a DIFFERENT seed, and the
// twin must replay slots 100..159 with the exact same decisions, weights,
// and multipliers as the original that never stopped — under drifting
// rewards, so any state the checkpoint failed to carry would diverge.
func TestCheckpointResumeBitIdenticalUnderDrift(t *testing.T) {
	cfg := testConfig()
	l := MustNew(cfg, rng.New(40))
	fbRoot := rng.New(41)
	var slotR rng.Stream
	slot := func(p *LFSC, t0 int) []int {
		view := makeView(t0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
		fbRoot.DeriveInto(uint64(t0), &slotR)
		return runSlot(p, view, driftTruth(t0), &slotR)
	}
	for t0 := 0; t0 < 100; t0++ {
		slot(l, t0)
	}
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}

	twin := MustNew(cfg, rng.New(9999))
	if err := twin.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := twin.SlotsSeen(); got != 100 {
		t.Fatalf("twin resumed at slot %d, want 100", got)
	}

	for t0 := 100; t0 < 160; t0++ {
		da := slot(l, t0)
		db := slot(twin, t0)
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("slot %d: decision for task %d diverged (%d vs %d)",
					t0, i, da[i], db[i])
			}
		}
	}
	for m := 0; m < cfg.SCNs; m++ {
		wa, wb := l.Weights(m), twin.Weights(m)
		for f := range wa {
			if wa[f] != wb[f] {
				t.Fatalf("weight [%d][%d] diverged after resume: %x vs %x",
					m, f, wa[f], wb[f])
			}
		}
		la1, la2 := l.Multipliers(m)
		lb1, lb2 := twin.Multipliers(m)
		if la1 != lb1 || la2 != lb2 {
			t.Fatalf("multipliers for SCN %d diverged after resume", m)
		}
	}
	if l.SlotsSeen() != twin.SlotsSeen() {
		t.Fatalf("slot counters diverged: %d vs %d", l.SlotsSeen(), twin.SlotsSeen())
	}
}

// TestCheckpointRestoreIntoDirtyEngineBitIdentical is the incremental-state
// variant of the resume guarantee: the engine receiving the checkpoint has
// already processed a completely different workload, so its derived caches
// — the cell census, probability cache, and in particular the persistent
// logW-sorted cap order — all reflect the WRONG history at Load time.
// Restore must still produce a continuation bit-identical to the original
// learner that never stopped: Load resets the per-slot caches and the next
// Decide's insertion repair absorbs the stale cap order from the restored
// logW alone.
func TestCheckpointRestoreIntoDirtyEngineBitIdentical(t *testing.T) {
	cfg := testConfig()
	l := MustNew(cfg, rng.New(60))
	fbRoot := rng.New(61)
	var slotR rng.Stream
	slot := func(p *LFSC, t0 int) []int {
		view := makeView(t0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
		fbRoot.DeriveInto(uint64(t0), &slotR)
		return runSlot(p, view, driftTruth(t0), &slotR)
	}
	for t0 := 0; t0 < 100; t0++ {
		slot(l, t0)
	}
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// The dirty twin learns 70 slots of an unrelated workload (different
	// views, different outcomes, different RNG) before the restore, so its
	// weights — and the cap order sorted from them — diverge maximally.
	dirty := MustNew(cfg, rng.New(4242))
	otherR := rng.New(4243)
	otherTruth := map[int][3]float64{0: {0.1, 0.3, 1.9}, 1: {0.95, 0.9, 1.05}, 2: {0.3, 0.2, 1.7}, 3: {0.7, 0.8, 1.2}}
	for t0 := 0; t0 < 70; t0++ {
		runSlot(dirty, makeView(t0, [][]int{{3, 2, 1, 0, 3, 2, 1}, {1, 0, 3, 2}}), otherTruth, otherR)
	}
	if err := dirty.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	for t0 := 100; t0 < 160; t0++ {
		da := slot(l, t0)
		db := slot(dirty, t0)
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("slot %d: dirty-restored decision for task %d diverged (%d vs %d)",
					t0, i, da[i], db[i])
			}
		}
	}
	for m := 0; m < cfg.SCNs; m++ {
		wa, wb := l.Weights(m), dirty.Weights(m)
		for f := range wa {
			if math.Float64bits(wa[f]) != math.Float64bits(wb[f]) {
				t.Fatalf("weight [%d][%d] diverged after dirty restore: %x vs %x",
					m, f, wa[f], wb[f])
			}
		}
		la1, la2 := l.Multipliers(m)
		lb1, lb2 := dirty.Multipliers(m)
		if math.Float64bits(la1) != math.Float64bits(lb1) ||
			math.Float64bits(la2) != math.Float64bits(lb2) {
			t.Fatalf("multipliers for SCN %d diverged after dirty restore", m)
		}
	}
}
