package core

import (
	"testing"

	"lfsc/internal/policy"
	"lfsc/internal/rng"
)

// paperBenchConfig is the Sec. 5 evaluation shape: 30 SCNs, c=20, 27 cells,
// |D_{m,t}| ∈ [35,100].
func paperBenchConfig() Config {
	return Config{
		SCNs: 30, Capacity: 20, Alpha: 15, Beta: 27,
		Cells: 27, KMax: 200, Horizon: 10000,
	}
}

// paperBenchView builds one paper-scale slot view.
func paperBenchView(seed uint64) *policy.SlotView {
	r := rng.New(seed)
	cells := make([][]int, 30)
	for m := range cells {
		n := 35 + r.Intn(66)
		cells[m] = make([]int, n)
		for i := range cells[m] {
			cells[m][i] = r.Intn(27)
		}
	}
	return makeView(0, cells)
}

// benchFeedback replays Decide once and synthesises the execution feedback
// the simulator would deliver for the resulting assignment.
func benchFeedback(l *LFSC, view *policy.SlotView) (*policy.Feedback, []int) {
	assigned := l.Decide(view)
	r := rng.New(7)
	fb := &policy.Feedback{}
	for taskIdx, m := range assigned {
		if m < 0 {
			continue
		}
		cell := view.Cells[taskIdx]
		v := 0.0
		if r.Bernoulli(0.7) {
			v = 1
		}
		fb.Execs = append(fb.Execs, policy.Exec{
			SCN: m, Task: taskIdx, Cell: cell,
			U: r.Float64(), V: v, Q: r.Uniform(1, 2),
		})
	}
	return fb, assigned
}

// benchDecide times steady-state Decide at paper scale
// (one op = one slot, so ns/op is ns/slot).
func benchDecide(b *testing.B, workers int) {
	cfg := paperBenchConfig()
	cfg.Workers = workers
	l := MustNew(cfg, rng.New(1))
	view := paperBenchView(2)
	l.Decide(view) // warm up the scratch arenas
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Decide(view)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/slot")
}

// benchUpdate times steady-state Observe (Alg. 3) at paper scale. Each
// Observe consumes the scratch of a Decide, so the paired Decide runs with
// the timer stopped.
func benchUpdate(b *testing.B, workers int) {
	cfg := paperBenchConfig()
	cfg.Workers = workers
	l := MustNew(cfg, rng.New(1))
	view := paperBenchView(2)
	fb, assigned := benchFeedback(l, view)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l.Decide(view)
		b.StartTimer()
		l.Observe(view, assigned, fb)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/slot")
}

// BenchmarkDecide is the serial (Workers=1) kernel: steady state must be
// allocation-free — 0 allocs/op is an acceptance criterion tracked by
// BENCH_core.json.
func BenchmarkDecide(b *testing.B) { benchDecide(b, 1) }

// BenchmarkDecideParallel is the same kernel on all cores (the default
// heuristic); the goroutine fan-out costs a handful of allocations but
// buys wall-clock on wide slots.
func BenchmarkDecideParallel(b *testing.B) { benchDecide(b, 0) }

// BenchmarkUpdate is the serial (Workers=1) Observe kernel: steady state
// must be allocation-free.
func BenchmarkUpdate(b *testing.B) { benchUpdate(b, 1) }

// BenchmarkUpdateParallel is Observe on all cores.
func BenchmarkUpdateParallel(b *testing.B) { benchUpdate(b, 0) }

// BenchmarkDecideObserve measures a full policy slot (Decide + Observe),
// the quantity every figure benchmark multiplies by T × replicas.
func BenchmarkDecideObserve(b *testing.B) {
	l := MustNew(paperBenchConfig(), rng.New(1))
	view := paperBenchView(2)
	fb, _ := benchFeedback(l, view)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assigned := l.Decide(view)
		l.Observe(view, assigned, fb)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/slot")
}
