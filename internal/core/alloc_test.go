package core

import (
	"testing"

	"lfsc/internal/rng"
)

// TestDecideObserveAllocFree pins the scratch-arena contract: after the
// warm-up slots have grown every buffer to its steady-state size, the
// serial (Workers=1) Decide/Observe loop performs zero heap allocations.
// This is what keeps the T × replicas × scenarios figure benchmarks off the
// allocator and the GC.
func TestDecideObserveAllocFree(t *testing.T) {
	cfg := paperBenchConfig()
	cfg.Workers = 1
	l := MustNew(cfg, rng.New(1))
	view := paperBenchView(2)
	fb, _ := benchFeedback(l, view)
	// Warm up: let every arena reach its high-water mark.
	for i := 0; i < 5; i++ {
		assigned := l.Decide(view)
		l.Observe(view, assigned, fb)
	}
	avg := testing.AllocsPerRun(50, func() {
		assigned := l.Decide(view)
		l.Observe(view, assigned, fb)
	})
	if avg != 0 {
		t.Fatalf("steady-state Decide+Observe allocates %.2f times per slot, want 0", avg)
	}
}

// TestDecideObserveParallelAllocBounded pins the parallel path's allocation
// budget: at Workers>1 the per-SCN fan-out costs a fixed handful of heap
// allocations per Decide/Observe pair (goroutines, the work-stealing
// closure, the WaitGroup guard) and nothing else — the per-SCN arenas are
// still reused. The bound is deliberately tight enough that any per-task or
// per-cell allocation sneaking into the parallel kernel (hundreds to
// thousands per slot at this scale) fails immediately, while leaving room
// for the fan-out scaffolding.
func TestDecideObserveParallelAllocBounded(t *testing.T) {
	cfg := paperBenchConfig()
	cfg.Workers = 4 // force real fan-out even on a single-core machine
	l := MustNew(cfg, rng.New(1))
	view := paperBenchView(2)
	fb, _ := benchFeedback(l, view)
	for i := 0; i < 5; i++ {
		assigned := l.Decide(view)
		l.Observe(view, assigned, fb)
	}
	avg := testing.AllocsPerRun(50, func() {
		assigned := l.Decide(view)
		l.Observe(view, assigned, fb)
	})
	if avg > 64 {
		t.Fatalf("parallel Decide+Observe allocates %.2f times per slot, want ≤ 64 (fan-out scaffolding only)", avg)
	}
}

// TestDecideAllocFreeAllModes extends the zero-alloc contract to the Race
// and Deterministic selection ablations.
func TestDecideAllocFreeAllModes(t *testing.T) {
	for _, mode := range []SelectionMode{DepRoundMode, Race, Deterministic} {
		cfg := paperBenchConfig()
		cfg.Workers = 1
		cfg.Mode = mode
		l := MustNew(cfg, rng.New(1))
		view := paperBenchView(2)
		for i := 0; i < 5; i++ {
			l.Decide(view)
		}
		avg := testing.AllocsPerRun(20, func() { l.Decide(view) })
		if avg != 0 {
			t.Fatalf("mode %v: steady-state Decide allocates %.2f times per slot, want 0", mode, avg)
		}
	}
}
