package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"lfsc/internal/assign"
	"lfsc/internal/hypercube"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
	"lfsc/internal/trace"
)

// shardFixture builds a full learner and an equivalent sharded deployment
// (numShards partial learners + a Merger) from the same seed, with SCNs
// assigned round-robin to shards.
func shardFixture(t *testing.T, cfg Config, seed uint64, numShards int) (*LFSC, []*LFSC, []int, *Merger) {
	t.Helper()
	full := MustNew(cfg, rng.New(seed))
	owner := make([]int, cfg.SCNs)
	ownedOf := make([][]int, numShards)
	for m := 0; m < cfg.SCNs; m++ {
		k := m % numShards
		owner[m] = k
		ownedOf[k] = append(ownedOf[k], m)
	}
	shards := make([]*LFSC, numShards)
	for k := range shards {
		l, err := NewPartial(cfg, rng.New(seed), ownedOf[k])
		if err != nil {
			t.Fatal(err)
		}
		shards[k] = l
	}
	merger, err := NewMerger(cfg, shards, owner)
	if err != nil {
		t.Fatal(err)
	}
	return full, shards, owner, merger
}

// TestShardedMatchesFullLearner drives a full learner and a 3-shard
// partial-learner deployment through 300 synthetic slots in lockstep and
// requires bit-identical assignments, log-weights, and multipliers every
// slot — the core half of the Shards=1-vs-N identity guarantee.
func TestShardedMatchesFullLearner(t *testing.T) {
	const slots = 300
	gen, err := trace.NewSynthetic(trace.SyntheticConfig{
		SCNs: 7, MinTasks: 6, MaxTasks: 20,
		Overlap: 0.35, LatencySensitiveFrac: 0.5,
	}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	part := hypercube.MustNew(3, 3)
	cfg := Config{
		SCNs: gen.SCNs(), Capacity: 3, Alpha: 2, Beta: 6,
		Cells: part.Cells(), KMax: gen.MaxPerSCN(), Horizon: slots,
	}
	full, shards, _, merger := shardFixture(t, cfg, 5, 3)

	cells := make([]int, 0, 256)
	for ts := 0; ts < slots; ts++ {
		slot := gen.Next(ts)
		cells = cells[:0]
		for _, tk := range slot.Tasks {
			cells = append(cells, part.IndexTask(tk, false))
		}
		view := &policy.SlotView{T: ts, NumTasks: len(slot.Tasks), Cells: cells}
		for _, cov := range slot.Coverage {
			view.SCNs = append(view.SCNs, policy.SCNView{Cover: cov})
		}

		fullAssign := full.Decide(view)
		for _, sh := range shards {
			sh.DecideLocal(view)
		}
		shardAssign := merger.Resolve(view)
		for i := range fullAssign {
			if fullAssign[i] != shardAssign[i] {
				t.Fatalf("slot %d task %d: full assigned %d, sharded %d",
					ts, i, fullAssign[i], shardAssign[i])
			}
		}

		fb := &policy.Feedback{}
		slotFB := rng.New(123).Derive(uint64(ts))
		for taskIdx, m := range fullAssign {
			if m < 0 {
				continue
			}
			v := 0.0
			if slotFB.Bernoulli(0.8) {
				v = 1
			}
			fb.Execs = append(fb.Execs, policy.Exec{
				SCN: m, Task: taskIdx, Cell: cells[taskIdx],
				U: slotFB.Float64(), V: v, Q: slotFB.Uniform(0.5, 1.5),
			})
		}
		full.Observe(view, fullAssign, fb)
		for _, sh := range shards {
			sh.Observe(view, shardAssign, fb)
		}

		for m := 0; m < cfg.SCNs; m++ {
			sa := full.scns[m]
			sb := shards[m%3].scns[m]
			for f := range sa.logW {
				if math.Float64bits(sa.logW[f]) != math.Float64bits(sb.logW[f]) {
					t.Fatalf("slot %d SCN %d cell %d: full logW %x != sharded %x",
						ts, m, f, sa.logW[f], sb.logW[f])
				}
			}
			if math.Float64bits(sa.lambda1) != math.Float64bits(sb.lambda1) ||
				math.Float64bits(sa.lambda2) != math.Float64bits(sb.lambda2) {
				t.Fatalf("slot %d SCN %d: multipliers diverged", ts, m)
			}
		}
	}
}

// TestTournamentMergeLockstepTwins pins the tentpole's merge-order
// equality at 1/2/4/7 shards: a sharded deployment whose Merger runs the
// parallel tournament reduction (SetMergeWorkers > 1) must stay
// bit-identical — assignments, log-weights, multipliers — to a full
// learner whose resolver runs the sequential k-way heap merge. The
// workload is sized so most slots carry enough edges to cross the
// tournament engagement threshold, and Deterministic mode keeps every
// covered task an edge so the merge is the whole resolution stage.
func TestTournamentMergeLockstepTwins(t *testing.T) {
	const slots = 120
	for _, numShards := range []int{1, 2, 4, 7} {
		gen, err := trace.NewSynthetic(trace.SyntheticConfig{
			SCNs: 7, MinTasks: 80, MaxTasks: 120,
			Overlap: 0.4, LatencySensitiveFrac: 0.5,
		}, rng.New(31))
		if err != nil {
			t.Fatal(err)
		}
		part := hypercube.MustNew(3, 3)
		cfg := Config{
			SCNs: gen.SCNs(), Capacity: 3, Alpha: 2, Beta: 6,
			Cells: part.Cells(), KMax: gen.MaxPerSCN(), Horizon: slots,
			Mode: Deterministic,
		}
		full, shards, owner, merger := shardFixture(t, cfg, 13, numShards)
		merger.SetMergeWorkers(4)

		cells := make([]int, 0, 1024)
		var exported [][]assign.Edge
		heavySlots := 0
		for ts := 0; ts < slots; ts++ {
			slot := gen.Next(ts)
			cells = cells[:0]
			for _, tk := range slot.Tasks {
				cells = append(cells, part.IndexTask(tk, false))
			}
			view := &policy.SlotView{T: ts, NumTasks: len(slot.Tasks), Cells: cells}
			totalEdges := 0
			for _, cov := range slot.Coverage {
				view.SCNs = append(view.SCNs, policy.SCNView{Cover: cov})
				totalEdges += len(cov)
			}
			if totalEdges >= 512 {
				heavySlots++
			}

			fullAssign := full.Decide(view)
			for _, sh := range shards {
				sh.DecideLocal(view)
			}

			// ExportEdges must stitch across shards into exactly the edge
			// lists the full learner primed: each SCN's list lives on its
			// owning shard and nowhere else.
			fullEdges := full.ExportEdges(nil)
			for k, sh := range shards {
				exported = sh.ExportEdges(exported)
				for m := range exported {
					if owner[m] != k {
						if exported[m] != nil {
							t.Fatalf("shards=%d slot %d: shard %d exported unowned SCN %d",
								numShards, ts, k, m)
						}
						continue
					}
					if len(exported[m]) != len(fullEdges[m]) {
						t.Fatalf("shards=%d slot %d SCN %d: shard exported %d edges, full %d",
							numShards, ts, m, len(exported[m]), len(fullEdges[m]))
					}
					for i := range exported[m] {
						if exported[m][i] != fullEdges[m][i] {
							t.Fatalf("shards=%d slot %d SCN %d edge %d: shard %+v, full %+v",
								numShards, ts, m, i, exported[m][i], fullEdges[m][i])
						}
					}
				}
			}

			shardAssign := merger.Resolve(view)
			for i := range fullAssign {
				if fullAssign[i] != shardAssign[i] {
					t.Fatalf("shards=%d slot %d task %d: sequential assigned %d, tournament %d",
						numShards, ts, i, fullAssign[i], shardAssign[i])
				}
			}

			fb := &policy.Feedback{}
			slotFB := rng.New(321).Derive(uint64(ts))
			for taskIdx, m := range fullAssign {
				if m < 0 {
					continue
				}
				v := 0.0
				if slotFB.Bernoulli(0.8) {
					v = 1
				}
				fb.Execs = append(fb.Execs, policy.Exec{
					SCN: m, Task: taskIdx, Cell: cells[taskIdx],
					U: slotFB.Float64(), V: v, Q: slotFB.Uniform(0.5, 1.5),
				})
			}
			full.Observe(view, fullAssign, fb)
			for _, sh := range shards {
				sh.Observe(view, shardAssign, fb)
			}

			for m := 0; m < cfg.SCNs; m++ {
				sa, sb := full.scns[m], shards[owner[m]].scns[m]
				for f := range sa.logW {
					if math.Float64bits(sa.logW[f]) != math.Float64bits(sb.logW[f]) {
						t.Fatalf("shards=%d slot %d SCN %d cell %d: logW diverged",
							numShards, ts, m, f)
					}
				}
				if math.Float64bits(sa.lambda1) != math.Float64bits(sb.lambda1) ||
					math.Float64bits(sa.lambda2) != math.Float64bits(sb.lambda2) {
					t.Fatalf("shards=%d slot %d SCN %d: multipliers diverged", numShards, ts, m)
				}
			}
		}
		// Guard against workload drift hollowing the test out: the
		// tournament path only engages past tournamentMinEdges total.
		if heavySlots < slots/2 {
			t.Fatalf("shards=%d: only %d/%d slots crossed the tournament threshold — workload too light",
				numShards, heavySlots, slots)
		}
	}
}

// TestPartialCheckpointRoundTrip saves each shard of a trained sharded
// deployment, restores the files into fresh partial learners, and checks
// the restored state (weights, multipliers, RNG streams, slot clock)
// matches bit-for-bit. It also pins the rejection rules: a partial
// checkpoint cannot load into a full learner or into a shard with a
// different owned set, and a full (pre-sharding) checkpoint loads into a
// partial learner, committing only the owned rows.
func TestPartialCheckpointRoundTrip(t *testing.T) {
	cfg := Config{
		SCNs: 5, Capacity: 2, Alpha: 1, Beta: 4,
		Cells: 9, KMax: 10, Horizon: 100,
	}
	_, shards, _, _ := shardFixture(t, cfg, 9, 2)
	// Perturb shard state so the round trip carries non-default values.
	for _, sh := range shards {
		for _, m := range sh.owned {
			st := sh.scns[m]
			for f := range st.logW {
				st.logW[f] = float64(m*100+f) / 7
			}
			st.lambda1 = float64(m) * 0.25
			st.lambda2 = float64(m) * 0.5
			st.r.Float64() // advance so stream state is non-initial
		}
		sh.slots = 42
	}

	for k, sh := range shards {
		var buf bytes.Buffer
		if err := sh.Save(&buf); err != nil {
			t.Fatalf("shard %d save: %v", k, err)
		}
		doc := buf.Bytes()

		restored, err := NewPartial(cfg, rng.New(1), sh.Owned())
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.Load(bytes.NewReader(doc)); err != nil {
			t.Fatalf("shard %d load: %v", k, err)
		}
		if restored.slots != 42 {
			t.Fatalf("shard %d restored slot clock %d, want 42", k, restored.slots)
		}
		for _, m := range sh.owned {
			a, b := sh.scns[m], restored.scns[m]
			for f := range a.logW {
				if math.Float64bits(a.logW[f]) != math.Float64bits(b.logW[f]) {
					t.Fatalf("shard %d SCN %d cell %d weight mismatch", k, m, f)
				}
			}
			if a.lambda1 != b.lambda1 || a.lambda2 != b.lambda2 {
				t.Fatalf("shard %d SCN %d multiplier mismatch", k, m)
			}
			if a.r.State() != b.r.State() {
				t.Fatalf("shard %d SCN %d RNG state mismatch", k, m)
			}
		}

		// A partial document must not load into a full learner...
		full := MustNew(cfg, rng.New(1))
		if err := full.Load(bytes.NewReader(doc)); err == nil ||
			!strings.Contains(err.Error(), "partial checkpoint") {
			t.Fatalf("partial doc into full learner: got %v, want owned-set mismatch", err)
		}
		// ...nor into a shard owning a different SCN set.
		other, err := NewPartial(cfg, rng.New(1), shards[1-k].Owned())
		if err != nil {
			t.Fatal(err)
		}
		if err := other.Load(bytes.NewReader(doc)); err == nil {
			t.Fatal("partial doc loaded into mismatched shard")
		}
	}

	// Compat: a full checkpoint (the only format before sharding existed)
	// loads into a partial learner, committing exactly the owned rows.
	full := MustNew(cfg, rng.New(77))
	for _, st := range full.scns {
		st.lambda1 = 0.125
	}
	full.slots = 17
	var buf bytes.Buffer
	if err := full.Save(&buf); err != nil {
		t.Fatal(err)
	}
	partial, err := NewPartial(cfg, rng.New(1), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := partial.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("full doc into partial learner: %v", err)
	}
	if partial.slots != 17 {
		t.Fatalf("slot clock %d, want 17", partial.slots)
	}
	for _, m := range []int{1, 3} {
		if partial.scns[m].lambda1 != 0.125 {
			t.Fatalf("SCN %d lambda1 not restored", m)
		}
		if partial.scns[m].r.State() != full.scns[m].r.State() {
			t.Fatalf("SCN %d RNG state not restored", m)
		}
	}
}

// TestPartialLearnerGuards pins the misuse errors: Decide on a partial
// learner panics, and NewPartial rejects malformed owned lists.
func TestPartialLearnerGuards(t *testing.T) {
	cfg := Config{SCNs: 4, Capacity: 2, Alpha: 1, Beta: 4, Cells: 9, KMax: 10, Horizon: 100}
	for _, owned := range [][]int{nil, {}, {2, 1}, {0, 0}, {-1}, {4}} {
		if _, err := NewPartial(cfg, rng.New(1), owned); err == nil {
			t.Fatalf("NewPartial(%v): expected error", owned)
		}
	}
	l, err := NewPartial(cfg, rng.New(1), []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Decide on a partial learner did not panic")
		}
	}()
	l.Decide(&policy.SlotView{})
}
