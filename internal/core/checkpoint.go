package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"slices"
)

// checkpointVersion guards the on-disk format.
//
//	v1: log-weights + Lagrange multipliers.
//	v2: adds the slot counter t (so the γ/η/δ schedule and the learner's
//	    slot clock resume where they left off) and the per-SCN RNG stream
//	    states (so the DepRound candidate sampling of a resumed run is
//	    bit-identical to a run that never stopped).
//
// Load accepts both: a v1 checkpoint restores with t = 0 and fresh RNG
// streams — the learned state carries over, the slot clock does not.
const checkpointVersion = 2

// checkpoint is the serialised learner state. Only the learned quantities
// are stored; the configuration travels separately (a checkpoint can only
// be restored into a policy with a compatible shape).
type checkpoint struct {
	Version int `json:"version"`
	SCNs    int `json:"scns"`
	Cells   int `json:"cells"`
	T       int `json:"t,omitempty"`
	// Owned, when present, marks a partial (shard) checkpoint: the arrays
	// below carry one row per entry, row i belonging to SCN Owned[i]
	// (strictly ascending). Absent/empty means the full per-SCN layout —
	// the format every unsharded checkpoint has always used.
	Owned   []int       `json:"owned,omitempty"`
	LogW    [][]float64 `json:"log_weights"`
	Lambda1 []float64   `json:"lambda1"`
	Lambda2 []float64   `json:"lambda2"`
	// Rng holds one (state, inc, root) triple per SCN — the full PCG state
	// of each SCN's private stream (see rng.Stream.State).
	Rng [][3]uint64 `json:"rng,omitempty"`
}

// Save serialises the learner's state (hypercube log-weights, Lagrange
// multipliers, slot counter, and per-SCN RNG streams) to w as JSON. A
// deployment can checkpoint a trained MBS controller and restore it after
// a restart instead of re-exploring; with the v2 fields the restored
// controller continues the original run bit-identically. A partial learner
// (NewPartial) writes only its owned SCNs' rows plus the owned list — one
// shard checkpoint per shard, stitched back together at restore time.
func (l *LFSC) Save(w io.Writer) error {
	rows := l.cfg.SCNs
	if l.owned != nil {
		rows = len(l.owned)
	}
	cp := checkpoint{
		Version: checkpointVersion,
		SCNs:    l.cfg.SCNs,
		Cells:   l.cfg.Cells,
		T:       l.slots,
		Owned:   l.owned,
		LogW:    make([][]float64, rows),
		Lambda1: make([]float64, rows),
		Lambda2: make([]float64, rows),
		Rng:     make([][3]uint64, rows),
	}
	for i := 0; i < rows; i++ {
		m := i
		if l.owned != nil {
			m = l.owned[i]
		}
		st := l.scns[m]
		cp.LogW[i] = append([]float64(nil), st.logW...)
		cp.Lambda1[i] = st.lambda1
		cp.Lambda2[i] = st.lambda2
		cp.Rng[i] = st.r.State()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&cp)
}

// Load restores learner state previously written by Save. The checkpoint
// must match the policy's SCN count and cell count exactly; every value is
// validated (finite weights, non-negative finite multipliers, a
// non-negative slot counter, structurally valid RNG triples) BEFORE any
// policy state is touched — a rejected checkpoint, however corrupt,
// truncated, or shape-mismatched, leaves the policy exactly as it was.
func (l *LFSC) Load(r io.Reader) error {
	var cp checkpoint
	dec := json.NewDecoder(r)
	if err := dec.Decode(&cp); err != nil {
		return fmt.Errorf("core: decode checkpoint: %w", err)
	}
	if cp.Version != 1 && cp.Version != checkpointVersion {
		return fmt.Errorf("core: checkpoint version %d, want 1 or %d", cp.Version, checkpointVersion)
	}
	if cp.SCNs != l.cfg.SCNs || cp.Cells != l.cfg.Cells {
		return fmt.Errorf("core: checkpoint shape %dx%d, policy %dx%d",
			cp.SCNs, cp.Cells, l.cfg.SCNs, l.cfg.Cells)
	}
	// A partial (shard) checkpoint carries one row per owned SCN; the
	// owned list must be strictly ascending and in range, and only a
	// learner with the identical owned set may load it (a full learner
	// restored from one shard's file would silently lose every other
	// shard's state).
	rows := cp.SCNs
	if len(cp.Owned) > 0 {
		if cp.Version < 2 {
			return fmt.Errorf("core: v1 checkpoint cannot be partial")
		}
		rows = len(cp.Owned)
		prev := -1
		for _, m := range cp.Owned {
			if m <= prev || m >= cp.SCNs {
				return fmt.Errorf("core: checkpoint owned list invalid at SCN %d", m)
			}
			prev = m
		}
		if l.owned == nil || !slices.Equal(l.owned, cp.Owned) {
			return fmt.Errorf("core: partial checkpoint (owned %v) does not match learner's owned SCNs %v",
				cp.Owned, l.owned)
		}
	}
	// rowSCN maps a row index to the SCN it belongs to.
	rowSCN := func(i int) int {
		if len(cp.Owned) > 0 {
			return cp.Owned[i]
		}
		return i
	}
	if len(cp.LogW) != rows || len(cp.Lambda1) != rows || len(cp.Lambda2) != rows {
		return fmt.Errorf("core: checkpoint arrays inconsistent with SCN count")
	}
	if cp.T < 0 {
		return fmt.Errorf("core: checkpoint has negative slot counter %d", cp.T)
	}
	// v1 checkpoints predate the RNG fields; for v2 the triples must be
	// present for every SCN and structurally valid (odd PCG increments).
	if cp.Version >= 2 {
		if len(cp.Rng) != rows {
			return fmt.Errorf("core: checkpoint has %d RNG states, want %d", len(cp.Rng), rows)
		}
		for i, st := range cp.Rng {
			if st[1]&1 == 0 {
				return fmt.Errorf("core: SCN %d has invalid RNG state (even increment)", rowSCN(i))
			}
		}
	} else if len(cp.Rng) != 0 {
		return fmt.Errorf("core: v1 checkpoint carries RNG states")
	}
	for i := 0; i < rows; i++ {
		m := rowSCN(i)
		if len(cp.LogW[i]) != cp.Cells {
			return fmt.Errorf("core: SCN %d has %d weights, want %d", m, len(cp.LogW[i]), cp.Cells)
		}
		for _, v := range cp.LogW[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: SCN %d has non-finite weight", m)
			}
		}
		if cp.Lambda1[i] < 0 || cp.Lambda2[i] < 0 ||
			math.IsNaN(cp.Lambda1[i]) || math.IsNaN(cp.Lambda2[i]) ||
			math.IsInf(cp.Lambda1[i], 0) || math.IsInf(cp.Lambda2[i], 0) {
			return fmt.Errorf("core: SCN %d has invalid multipliers", m)
		}
	}
	// All validated; commit. A full checkpoint loading into a partial
	// learner commits only the rows the learner owns — the shard-restore
	// compat path for pre-sharding single-file checkpoints.
	for i := 0; i < rows; i++ {
		m := rowSCN(i)
		st := l.scns[m]
		if st == nil {
			continue
		}
		copy(st.logW, cp.LogW[i])
		st.lambda1 = cp.Lambda1[i]
		st.lambda2 = cp.Lambda2[i]
		if cp.Version >= 2 {
			if !st.r.Restore(cp.Rng[i]) {
				// Unreachable: validated above. Guard anyway so a logic
				// error cannot half-commit.
				return fmt.Errorf("core: SCN %d RNG restore failed", m)
			}
		}
		st.resetCaches() // any in-flight slot cache (census, probabilities, picks) is stale now
	}
	if cp.Version >= 2 {
		l.slots = cp.T
	} else {
		l.slots = 0
	}
	return nil
}
