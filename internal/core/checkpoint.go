package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// checkpointVersion guards the on-disk format.
//
//	v1: log-weights + Lagrange multipliers.
//	v2: adds the slot counter t (so the γ/η/δ schedule and the learner's
//	    slot clock resume where they left off) and the per-SCN RNG stream
//	    states (so the DepRound candidate sampling of a resumed run is
//	    bit-identical to a run that never stopped).
//
// Load accepts both: a v1 checkpoint restores with t = 0 and fresh RNG
// streams — the learned state carries over, the slot clock does not.
const checkpointVersion = 2

// checkpoint is the serialised learner state. Only the learned quantities
// are stored; the configuration travels separately (a checkpoint can only
// be restored into a policy with a compatible shape).
type checkpoint struct {
	Version int         `json:"version"`
	SCNs    int         `json:"scns"`
	Cells   int         `json:"cells"`
	T       int         `json:"t,omitempty"`
	LogW    [][]float64 `json:"log_weights"`
	Lambda1 []float64   `json:"lambda1"`
	Lambda2 []float64   `json:"lambda2"`
	// Rng holds one (state, inc, root) triple per SCN — the full PCG state
	// of each SCN's private stream (see rng.Stream.State).
	Rng [][3]uint64 `json:"rng,omitempty"`
}

// Save serialises the learner's state (hypercube log-weights, Lagrange
// multipliers, slot counter, and per-SCN RNG streams) to w as JSON. A
// deployment can checkpoint a trained MBS controller and restore it after
// a restart instead of re-exploring; with the v2 fields the restored
// controller continues the original run bit-identically.
func (l *LFSC) Save(w io.Writer) error {
	cp := checkpoint{
		Version: checkpointVersion,
		SCNs:    l.cfg.SCNs,
		Cells:   l.cfg.Cells,
		T:       l.slots,
		LogW:    make([][]float64, l.cfg.SCNs),
		Lambda1: make([]float64, l.cfg.SCNs),
		Lambda2: make([]float64, l.cfg.SCNs),
		Rng:     make([][3]uint64, l.cfg.SCNs),
	}
	for m, st := range l.scns {
		cp.LogW[m] = append([]float64(nil), st.logW...)
		cp.Lambda1[m] = st.lambda1
		cp.Lambda2[m] = st.lambda2
		cp.Rng[m] = st.r.State()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&cp)
}

// Load restores learner state previously written by Save. The checkpoint
// must match the policy's SCN count and cell count exactly; every value is
// validated (finite weights, non-negative finite multipliers, a
// non-negative slot counter, structurally valid RNG triples) BEFORE any
// policy state is touched — a rejected checkpoint, however corrupt,
// truncated, or shape-mismatched, leaves the policy exactly as it was.
func (l *LFSC) Load(r io.Reader) error {
	var cp checkpoint
	dec := json.NewDecoder(r)
	if err := dec.Decode(&cp); err != nil {
		return fmt.Errorf("core: decode checkpoint: %w", err)
	}
	if cp.Version != 1 && cp.Version != checkpointVersion {
		return fmt.Errorf("core: checkpoint version %d, want 1 or %d", cp.Version, checkpointVersion)
	}
	if cp.SCNs != l.cfg.SCNs || cp.Cells != l.cfg.Cells {
		return fmt.Errorf("core: checkpoint shape %dx%d, policy %dx%d",
			cp.SCNs, cp.Cells, l.cfg.SCNs, l.cfg.Cells)
	}
	if len(cp.LogW) != cp.SCNs || len(cp.Lambda1) != cp.SCNs || len(cp.Lambda2) != cp.SCNs {
		return fmt.Errorf("core: checkpoint arrays inconsistent with SCN count")
	}
	if cp.T < 0 {
		return fmt.Errorf("core: checkpoint has negative slot counter %d", cp.T)
	}
	// v1 checkpoints predate the RNG fields; for v2 the triples must be
	// present for every SCN and structurally valid (odd PCG increments).
	if cp.Version >= 2 {
		if len(cp.Rng) != cp.SCNs {
			return fmt.Errorf("core: checkpoint has %d RNG states, want %d", len(cp.Rng), cp.SCNs)
		}
		for m, st := range cp.Rng {
			if st[1]&1 == 0 {
				return fmt.Errorf("core: SCN %d has invalid RNG state (even increment)", m)
			}
		}
	} else if len(cp.Rng) != 0 {
		return fmt.Errorf("core: v1 checkpoint carries RNG states")
	}
	for m := 0; m < cp.SCNs; m++ {
		if len(cp.LogW[m]) != cp.Cells {
			return fmt.Errorf("core: SCN %d has %d weights, want %d", m, len(cp.LogW[m]), cp.Cells)
		}
		for _, v := range cp.LogW[m] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: SCN %d has non-finite weight", m)
			}
		}
		if cp.Lambda1[m] < 0 || cp.Lambda2[m] < 0 ||
			math.IsNaN(cp.Lambda1[m]) || math.IsNaN(cp.Lambda2[m]) ||
			math.IsInf(cp.Lambda1[m], 0) || math.IsInf(cp.Lambda2[m], 0) {
			return fmt.Errorf("core: SCN %d has invalid multipliers", m)
		}
	}
	// All validated; commit.
	for m, st := range l.scns {
		copy(st.logW, cp.LogW[m])
		st.lambda1 = cp.Lambda1[m]
		st.lambda2 = cp.Lambda2[m]
		if cp.Version >= 2 {
			if !st.r.Restore(cp.Rng[m]) {
				// Unreachable: validated above. Guard anyway so a logic
				// error cannot half-commit.
				return fmt.Errorf("core: SCN %d RNG restore failed", m)
			}
		}
		st.resetCaches() // any in-flight slot cache (census, probabilities, picks) is stale now
	}
	if cp.Version >= 2 {
		l.slots = cp.T
	} else {
		l.slots = 0
	}
	return nil
}
