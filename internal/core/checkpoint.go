package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// checkpoint is the serialised learner state. Only the learned quantities
// are stored; the configuration travels separately (a checkpoint can only
// be restored into a policy with a compatible shape).
type checkpoint struct {
	Version int         `json:"version"`
	SCNs    int         `json:"scns"`
	Cells   int         `json:"cells"`
	LogW    [][]float64 `json:"log_weights"`
	Lambda1 []float64   `json:"lambda1"`
	Lambda2 []float64   `json:"lambda2"`
}

// Save serialises the learner's state (hypercube log-weights and Lagrange
// multipliers) to w as JSON. A deployment can checkpoint a trained MBS
// controller and restore it after a restart instead of re-exploring.
func (l *LFSC) Save(w io.Writer) error {
	cp := checkpoint{
		Version: checkpointVersion,
		SCNs:    l.cfg.SCNs,
		Cells:   l.cfg.Cells,
		LogW:    make([][]float64, l.cfg.SCNs),
		Lambda1: make([]float64, l.cfg.SCNs),
		Lambda2: make([]float64, l.cfg.SCNs),
	}
	for m, st := range l.scns {
		cp.LogW[m] = append([]float64(nil), st.logW...)
		cp.Lambda1[m] = st.lambda1
		cp.Lambda2[m] = st.lambda2
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&cp)
}

// Load restores learner state previously written by Save. The checkpoint
// must match the policy's SCN count and cell count exactly; all values must
// be finite and multipliers non-negative.
func (l *LFSC) Load(r io.Reader) error {
	var cp checkpoint
	dec := json.NewDecoder(r)
	if err := dec.Decode(&cp); err != nil {
		return fmt.Errorf("core: decode checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("core: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	if cp.SCNs != l.cfg.SCNs || cp.Cells != l.cfg.Cells {
		return fmt.Errorf("core: checkpoint shape %dx%d, policy %dx%d",
			cp.SCNs, cp.Cells, l.cfg.SCNs, l.cfg.Cells)
	}
	if len(cp.LogW) != cp.SCNs || len(cp.Lambda1) != cp.SCNs || len(cp.Lambda2) != cp.SCNs {
		return fmt.Errorf("core: checkpoint arrays inconsistent with SCN count")
	}
	for m := 0; m < cp.SCNs; m++ {
		if len(cp.LogW[m]) != cp.Cells {
			return fmt.Errorf("core: SCN %d has %d weights, want %d", m, len(cp.LogW[m]), cp.Cells)
		}
		for _, v := range cp.LogW[m] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: SCN %d has non-finite weight", m)
			}
		}
		if cp.Lambda1[m] < 0 || cp.Lambda2[m] < 0 ||
			math.IsNaN(cp.Lambda1[m]) || math.IsNaN(cp.Lambda2[m]) {
			return fmt.Errorf("core: SCN %d has invalid multipliers", m)
		}
	}
	// All validated; commit.
	for m, st := range l.scns {
		copy(st.logW, cp.LogW[m])
		st.lambda1 = cp.Lambda1[m]
		st.lambda2 = cp.Lambda2[m]
		st.resetSlot() // any in-flight slot scratch is stale now
	}
	return nil
}
