package core

import (
	"fmt"

	"lfsc/internal/assign"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
)

// NewPartial constructs a partial LFSC learner that materializes only the
// SCNs listed in owned (strictly ascending, each in [0, cfg.SCNs)). The
// unowned entries of scns stay nil; DecideLocal and Observe skip them, and
// the cross-SCN resolution must run through a Merger stitched over every
// shard's states.
//
// Each owned SCN's stream is r.Derive(uint64(m)) — Derive is pure (keyed
// on the label, never advancing the parent), so a partial learner's SCN m
// stream is bit-identical to a full learner's built from the same root
// stream. That, plus the shared resolver code path, is the whole Shards=1
// vs Shards=N identity argument.
func NewPartial(cfg Config, r *rng.Stream, owned []int) (*LFSC, error) {
	if len(owned) == 0 {
		return nil, fmt.Errorf("core: partial learner owns no SCNs")
	}
	l, err := newLFSC(cfg, r)
	if err != nil {
		return nil, err
	}
	prev := -1
	for _, m := range owned {
		if m <= prev || m >= cfg.SCNs {
			return nil, fmt.Errorf("core: invalid owned SCN list %v (must be strictly ascending, in [0,%d))",
				owned, cfg.SCNs)
		}
		prev = m
	}
	l.owned = append([]int(nil), owned...)
	for _, m := range l.owned {
		l.scns[m] = newSCNState(cfg, r.Derive(uint64(m)))
	}
	return l, nil
}

// Owned returns the SCN indices this learner materializes (a copy), or nil
// for a full learner.
func (l *LFSC) Owned() []int {
	if l.owned == nil {
		return nil
	}
	return append([]int(nil), l.owned...)
}

// Merger runs the cross-SCN resolution stage (Alg. 4) over the combined
// per-SCN states of a set of partial learners. It holds its own resolver —
// the identical code a full learner's Decide runs — plus a stitched states
// array pointing at each SCN's owning shard, so resolution over shards is
// bit-for-bit the unsharded computation.
type Merger struct {
	res    resolver
	states []*scnState
}

// NewMerger stitches the merger's state view: owner[m] names the shard
// owning SCN m, and shards[owner[m]] must actually materialize it.
func NewMerger(cfg Config, shards []*LFSC, owner []int) (*Merger, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(owner) != cfg.SCNs {
		return nil, fmt.Errorf("core: owner map has %d entries, want %d", len(owner), cfg.SCNs)
	}
	g := &Merger{res: newResolver(cfg), states: make([]*scnState, cfg.SCNs)}
	for m, k := range owner {
		if k < 0 || k >= len(shards) || shards[k] == nil {
			return nil, fmt.Errorf("core: SCN %d mapped to invalid shard %d", m, k)
		}
		st := shards[k].scns[m]
		if st == nil {
			return nil, fmt.Errorf("core: shard %d does not own SCN %d", k, m)
		}
		g.states[m] = st
	}
	return g, nil
}

// Resolve turns the candidate sets primed by this slot's DecideLocal pass
// on every shard into the global assignment. Single-threaded, like the
// resolution stage of an unsharded Decide; the returned slice aliases
// merger-owned scratch valid until the next call.
func (g *Merger) Resolve(view *policy.SlotView) []int {
	return g.res.resolve(g.states, view)
}

// SetMergeWorkers sets the parallelism of the resolver's edge-merge
// stage: > 1 replaces the sequential k-way heap merge with the
// deterministic parallel tournament reduction (assign.
// TournamentMergeInto) whenever a slot carries enough edges to amortise
// the fan-out. The assignment is bit-identical at any setting — the
// merge order is the unique cmpEdge total order either way.
func (g *Merger) SetMergeWorkers(n int) { g.res.mergeWorkers = n }

// ExportEdges exposes the per-SCN sorted candidate edge lists the last
// DecideLocal (or Decide) pass left behind, one entry per SCN of the
// topology: unowned SCNs (partial learners) and SCNs whose list was not
// primed this slot are nil. The lists alias learner scratch valid until
// the next decide pass. The merge-order lockstep twins consume these to
// pin tournament-vs-heap equality across shard counts.
func (l *LFSC) ExportEdges(dst [][]assign.Edge) [][]assign.Edge {
	for len(dst) < len(l.scns) {
		dst = append(dst, nil)
	}
	dst = dst[:len(l.scns)]
	for m := range dst {
		dst[m] = nil
	}
	export := func(m int) {
		if st := l.scns[m]; st != nil && len(st.edges) > 0 {
			dst[m] = st.edges
		}
	}
	if l.owned == nil {
		for m := range l.scns {
			export(m)
		}
	} else {
		for _, m := range l.owned {
			export(m)
		}
	}
	return dst
}
