package core

import (
	"math"
	"slices"
	"testing"

	"lfsc/internal/geo"
	"lfsc/internal/hypercube"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
	"lfsc/internal/trace"
)

// This file property-tests the incremental-maintenance claim behind the hot
// kernel: every structure scnState carries across slots (the persistent
// logW-sorted cell order, the cell census, the per-cell probability cache)
// is a pure cache of (logW, slot view) — destroying and scrambling all of
// it before every single Decide must not change one bit of any weight,
// multiplier, or assignment. The end-to-end reward pin can mask a drift
// that cancels in aggregate; these checks compare the raw state hex-float
// digit by digit.

// naiveCapFixedPoint is the from-scratch reference for the Exp3.M cap fixed
// point ε = τ·Σ_i min(w_i, ε): sort the per-task weights and scan for the
// valid cap rank. It deliberately shares no state with solveCapCells — no
// persistent order, no grouped expansion — but mirrors its summation order
// and tolerance constants, because the property under test is that the
// incremental bookkeeping changes nothing, not that a different summation
// order lands on the same floats.
func naiveCapFixedPoint(w []float64, tau float64) float64 {
	asc := append([]float64(nil), w...)
	slices.Sort(asc)
	n := len(asc)
	pre := make([]float64, n+1)
	for i := 0; i < n; i++ {
		pre[i+1] = pre[i] + asc[i]
	}
	for j := 1; j <= n; j++ {
		rest := pre[n-j]
		denom := 1 - float64(j)*tau
		if denom <= 0 {
			break
		}
		eps := tau * rest / denom
		lower := 0.0
		if j < n {
			lower = asc[n-1-j]
		}
		if eps <= asc[n-j]*(1+1e-12) && eps >= lower*(1-1e-12) {
			return eps
		}
	}
	return asc[n-1]
}

// naiveProbs recomputes Alg. 2's selection probabilities per task position
// directly from logW — no census, no per-cell sharing, no persistent order.
func naiveProbs(l *LFSC, st *scnState, cover []int, cells []int) []float64 {
	k := len(cover)
	c := l.cfg.Capacity
	out := make([]float64, k)
	if k <= c {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	const minLogDiff = -60.0
	maxLog := math.Inf(-1)
	for _, idx := range cover {
		if lw := st.logW[cells[idx]]; lw > maxLog {
			maxLog = lw
		}
	}
	w := make([]float64, k)
	for i, idx := range cover {
		d := st.logW[cells[idx]] - maxLog
		if d < minLogDiff {
			d = minLogDiff
		}
		w[i] = math.Exp(d)
	}
	sum, maxW := 0.0, 0.0
	for _, wi := range w {
		sum += wi
		if wi > maxW {
			maxW = wi
		}
	}
	tau := (1/float64(c) - l.gamma/float64(k)) / (1 - l.gamma)
	if !l.cfg.DisableCapping && tau > 0 && maxW >= tau*sum {
		eps := naiveCapFixedPoint(w, tau)
		for i := range w {
			if w[i] >= eps {
				w[i] = eps
			}
		}
		sum = 0
		for _, wi := range w {
			sum += wi
		}
	}
	for i, wi := range w {
		p := float64(c) * ((1-l.gamma)*wi/sum + l.gamma/float64(k))
		if p > 1 {
			p = 1
		}
		if p < 0 {
			p = 0
		}
		out[i] = p
	}
	return out
}

// TestIncrementalMatchesNaiveRecompute runs twin learners in lockstep over
// 500 slots of each workload generator: one on the incremental path, one
// whose caches are dropped (resetCaches) and whose persistent cap order is
// scrambled before every Decide — the naive full-recompute execution. The
// incremental learner's probability vector is additionally checked, every
// slot and SCN, against a from-scratch positional recomputation. All
// comparisons are exact to the float64 bit.
func TestIncrementalMatchesNaiveRecompute(t *testing.T) {
	base := trace.SyntheticConfig{
		SCNs: 6, MinTasks: 8, MaxTasks: 24,
		Overlap: 0.3, LatencySensitiveFrac: 0.5,
	}
	area := geo.Area{W: 1000, H: 1000}
	gens := []struct {
		name string
		mk   func(r *rng.Stream) (trace.Generator, error)
	}{
		{"synthetic", func(r *rng.Stream) (trace.Generator, error) {
			return trace.NewSynthetic(base, r)
		}},
		{"stress", func(r *rng.Stream) (trace.Generator, error) {
			return trace.NewStress(trace.StressConfig{
				Base: base, Kind: trace.Hotspot, PeriodSlots: 60,
			}, r)
		}},
		{"geo", func(r *rng.Stream) (trace.Generator, error) {
			return trace.NewGeo(trace.GeoConfig{
				Area: area, SCNPositions: geo.PlaceGrid(area, 9),
				RadiusM: 260, WDs: 120, TaskProb: 0.4,
				MinSpeed: 1, MaxSpeed: 10, MaxPause: 3,
				LatencySensitiveFrac: 0.5,
			}, r)
		}},
	}
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) { runLockstepTwin(t, g.mk) })
	}
}

func runLockstepTwin(t *testing.T, mk func(r *rng.Stream) (trace.Generator, error)) {
	const slots = 500
	gen, err := mk(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	part := hypercube.MustNew(3, 3)
	cfg := Config{
		SCNs: gen.SCNs(), Capacity: 4, Alpha: 2, Beta: 7,
		Cells: part.Cells(), KMax: gen.MaxPerSCN(), Horizon: slots,
	}
	// Identical seeds: the learners' policy/SCN streams stay in lockstep as
	// long as both make the same decisions. The scramble stream is separate
	// so cache destruction never touches the naive learner's draws.
	inc := MustNew(cfg, rng.New(5))
	naive := MustNew(cfg, rng.New(5))
	scramble := rng.New(99)
	fbRoot := rng.New(123)

	cells := make([]int, 0, 256)
	for ts := 0; ts < slots; ts++ {
		slot := gen.Next(ts)
		cells = cells[:0]
		for _, tk := range slot.Tasks {
			cells = append(cells, part.IndexTask(tk, false))
		}
		view := &policy.SlotView{T: ts, NumTasks: len(slot.Tasks), Cells: cells}
		for _, cov := range slot.Coverage {
			view.SCNs = append(view.SCNs, policy.SCNView{Cover: cov})
		}

		// Cross-check the incremental probability path against the naive
		// positional recomputation before the slot's decision.
		for m := range view.SCNs {
			cover := view.SCNs[m].Cover
			if len(cover) == 0 {
				continue
			}
			want := naiveProbs(inc, inc.scns[m], cover, cells)
			got := inc.probabilities(inc.scns[m], cover, cells)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("slot %d SCN %d task %d: incremental prob %x != naive %x",
						ts, m, i, got[i], want[i])
				}
			}
		}

		// Naive twin: drop every slot-derived cache and scramble the
		// persistent cap order, forcing the next Decide to rebuild all of
		// it from logW alone.
		for _, st := range naive.scns {
			st.resetCaches()
			scramble.Shuffle(len(st.order), func(i, j int) {
				st.order[i], st.order[j] = st.order[j], st.order[i]
			})
		}

		aAssign := inc.Decide(view)
		bAssign := naive.Decide(view)
		for i := range aAssign {
			if aAssign[i] != bAssign[i] {
				t.Fatalf("slot %d task %d: incremental assigned %d, naive %d",
					ts, i, aAssign[i], bAssign[i])
			}
		}

		// One realized outcome set feeds both learners (assignments are
		// equal, so the feedback is valid for either).
		fb := &policy.Feedback{}
		slotFB := fbRoot.Derive(uint64(ts))
		for taskIdx, m := range aAssign {
			if m < 0 {
				continue
			}
			v := 0.0
			if slotFB.Bernoulli(0.8) {
				v = 1
			}
			fb.Execs = append(fb.Execs, policy.Exec{
				SCN: m, Task: taskIdx, Cell: cells[taskIdx],
				U: slotFB.Float64(), V: v, Q: slotFB.Uniform(0.5, 1.5),
			})
		}
		inc.Observe(view, aAssign, fb)
		naive.Observe(view, bAssign, fb)

		for m := 0; m < cfg.SCNs; m++ {
			sa, sb := inc.scns[m], naive.scns[m]
			for f := range sa.logW {
				if math.Float64bits(sa.logW[f]) != math.Float64bits(sb.logW[f]) {
					t.Fatalf("slot %d SCN %d cell %d: incremental logW %x != naive %x",
						ts, m, f, sa.logW[f], sb.logW[f])
				}
			}
			if math.Float64bits(sa.lambda1) != math.Float64bits(sb.lambda1) ||
				math.Float64bits(sa.lambda2) != math.Float64bits(sb.lambda2) {
				t.Fatalf("slot %d SCN %d: multipliers diverged (%x,%x) != (%x,%x)",
					ts, m, sa.lambda1, sa.lambda2, sb.lambda1, sb.lambda2)
			}
		}
	}
}
