package core

import (
	"bytes"
	"testing"

	"lfsc/internal/rng"
)

// FuzzCheckpointLoad feeds arbitrary bytes (seeded with valid v1/v2
// checkpoints and near-miss corruptions) into LFSC.Load and checks the
// hardening contract: Load never panics, and a Load that returns an error
// leaves the learner's observable state — weights, multipliers, slot
// counter — exactly as it was.
func FuzzCheckpointLoad(f *testing.F) {
	l := MustNew(testConfig(), rng.New(50))
	r := rng.New(51)
	truth := map[int][3]float64{
		0: {0.9, 0.9, 1.1}, 1: {0.2, 0.4, 1.8},
		2: {0.6, 0.7, 1.3}, 3: {0.4, 0.2, 1.9},
	}
	for t0 := 0; t0 < 20; t0++ {
		view := makeView(t0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
		runSlot(l, view, truth, r)
	}

	// Seed corpus: a genuine v2 checkpoint, its v1 shape, and corruptions
	// exercising every validation branch.
	var valid bytes.Buffer
	if err := l.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{"version":1,"scns":2,"cells":4,"log_weights":[[0,0,0,0],[0.5,-1,0,0]],"lambda1":[0,0.25],"lambda2":[0,0]}`))
	f.Add([]byte(`{"version":2,"scns":2,"cells":4,"t":7,"log_weights":[[0,0,0,0],[0,0,0,0]],"lambda1":[0,0],"lambda2":[0,0],"rng":[[1,3,5],[9,7,5]]}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"version":2,"scns":2,"cells":4,"t":-3,"log_weights":[[0,0,0,0],[0,0,0,0]],"lambda1":[0,0],"lambda2":[0,0],"rng":[[1,3,5],[1,3,5]]}`))
	f.Add([]byte(`{"version":2,"scns":2,"cells":4,"t":7,"log_weights":[[0,0,0,0],[0,0,0,0]],"lambda1":[0,0],"lambda2":[0,0],"rng":[[1,2,5],[1,3,5]]}`))
	f.Add([]byte(`{"version":1,"scns":3,"cells":4,"log_weights":[[0,0,0,0],[0,0,0,0],[0,0,0,0]],"lambda1":[0,0,0],"lambda2":[0,0,0]}`))
	f.Add([]byte(`{"version":1,"scns":2,"cells":4,"log_weights":[[0,0,0],[0,0,0,0]],"lambda1":[0,0],"lambda2":[0,0]}`))
	f.Add([]byte(`{"version":1,"scns":2,"cells":4,"log_weights":[[0,0,0,0],[0,0,0,0]],"lambda1":[-1,0],"lambda2":[0,0]}`))
	f.Add([]byte(`not a checkpoint`))
	f.Add([]byte(`{"version":2,"scns":2,`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		target := MustNew(testConfig(), rng.New(52))
		// Pre-train a little so "unchanged" is distinguishable from "reset".
		rr := rng.New(53)
		for t0 := 0; t0 < 3; t0++ {
			view := makeView(t0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
			runSlot(target, view, truth, rr)
		}
		before := snapshotState(target)
		err := target.Load(bytes.NewReader(data))
		if err != nil {
			if !statesEqual(before, snapshotState(target)) {
				t.Fatalf("failed Load mutated policy state (err=%v)", err)
			}
			return
		}
		// A successful load must leave the learner usable: one full slot
		// must run without panicking and produce a valid assignment.
		view := makeView(99, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
		runSlot(target, view, truth, rr)
	})
}
