package core

import (
	"math"
	"testing"

	"lfsc/internal/obs"
	"lfsc/internal/rng"
)

// TestSnapshotMatchesAccessors: the bulk Snapshot must agree with the
// existing one-SCN accessors (Multipliers, Schedule) and produce bounded
// derived quantities.
func TestSnapshotMatchesAccessors(t *testing.T) {
	cfg := paperBenchConfig()
	cfg.Workers = 1
	l := MustNew(cfg, rng.New(1))
	view := paperBenchView(2)
	fb, _ := benchFeedback(l, view)
	for i := 0; i < 20; i++ {
		assigned := l.Decide(view)
		l.Observe(view, assigned, fb)
	}

	var snap obs.PolicySnapshot
	l.Snapshot(&snap)
	if snap.Policy != "LFSC" {
		t.Fatalf("policy name %q", snap.Policy)
	}
	g, e, d := cfg.Schedule()
	if snap.Gamma != g || snap.Eta != e || snap.Delta != d {
		t.Fatalf("schedule (%v,%v,%v) != config schedule (%v,%v,%v)",
			snap.Gamma, snap.Eta, snap.Delta, g, e, d)
	}
	if len(snap.Lambda1) != cfg.SCNs {
		t.Fatalf("lambda1 length %d, want %d", len(snap.Lambda1), cfg.SCNs)
	}
	for m := 0; m < cfg.SCNs; m++ {
		l1, l2 := l.Multipliers(m)
		if snap.Lambda1[m] != l1 || snap.Lambda2[m] != l2 {
			t.Fatalf("SCN %d multipliers (%v,%v) != accessors (%v,%v)",
				m, snap.Lambda1[m], snap.Lambda2[m], l1, l2)
		}
		if snap.Entropy[m] < 0 || snap.Entropy[m] > 1+1e-12 {
			t.Fatalf("SCN %d entropy %v outside [0,1]", m, snap.Entropy[m])
		}
		if snap.ExplorationMass[m] < 0 || snap.ExplorationMass[m] > 1+1e-12 {
			t.Fatalf("SCN %d exploration mass %v outside [0,1]", m, snap.ExplorationMass[m])
		}
		if snap.CappedCells[m] < 0 || snap.CappedCells[m] > cfg.Cells {
			t.Fatalf("SCN %d capped count %d outside [0,%d]", m, snap.CappedCells[m], cfg.Cells)
		}
	}
}

// TestSnapshotAllocFree: after the first call has grown the buffers,
// repeated sampling into the same snapshot performs no heap allocations —
// the sampling loop must not disturb the run's allocation profile.
func TestSnapshotAllocFree(t *testing.T) {
	cfg := paperBenchConfig()
	cfg.Workers = 1
	l := MustNew(cfg, rng.New(1))
	view := paperBenchView(2)
	l.Decide(view)
	var snap obs.PolicySnapshot
	l.Snapshot(&snap)
	avg := testing.AllocsPerRun(20, func() { l.Snapshot(&snap) })
	if avg != 0 {
		t.Fatalf("Snapshot allocates %.2f times per call after warm-up, want 0", avg)
	}
}

// TestWeightEntropy exercises the entropy/exploration-mass kernel on
// known distributions.
func TestWeightEntropy(t *testing.T) {
	// Uniform weights: entropy 1, and no cell is strictly below 1/F.
	h, low := weightEntropy(make([]float64, 8))
	if math.Abs(h-1) > 1e-12 {
		t.Fatalf("uniform entropy %v, want 1", h)
	}
	if low != 0 {
		t.Fatalf("uniform low mass %v, want 0", low)
	}
	// One dominant cell: entropy near 0, the rest of the mass below 1/F.
	w := make([]float64, 8)
	w[3] = 200
	h, low = weightEntropy(w)
	if h > 1e-6 {
		t.Fatalf("collapsed entropy %v, want ~0", h)
	}
	if low > 1e-6 {
		t.Fatalf("collapsed low mass %v, want ~0 (tail underflows)", low)
	}
	// Two-level distribution: entropy strictly between, low mass positive.
	w = []float64{2, 2, 0, 0}
	h, low = weightEntropy(w)
	if h <= 0 || h >= 1 {
		t.Fatalf("two-level entropy %v, want in (0,1)", h)
	}
	if low <= 0 || low >= 0.5 {
		t.Fatalf("two-level low mass %v, want in (0,0.5)", low)
	}
	// Degenerate sizes.
	if h, low = weightEntropy(nil); h != 0 || low != 0 {
		t.Fatal("nil weights must report zeroes")
	}
	if h, low = weightEntropy([]float64{5}); h != 0 || low != 0 {
		t.Fatal("single cell must report zeroes")
	}
}
