package core

import (
	"math"
	"testing"
	"testing/quick"

	"lfsc/internal/policy"
	"lfsc/internal/rng"
)

// TestProbabilityInvariantsQuick property-tests the Exp3.M probability
// computation across random weight configurations and task multisets:
// every p_i ∈ [0,1] and Σp_i = min(c, K) up to float tolerance.
func TestProbabilityInvariantsQuick(t *testing.T) {
	cfg := Config{
		SCNs: 1, Capacity: 4, Alpha: 1, Beta: 10,
		Cells: 8, KMax: 64, Horizon: 1000,
	}
	check := func(rawWeights []float64, cellChoices []uint8) bool {
		if len(rawWeights) == 0 || len(cellChoices) == 0 {
			return true
		}
		l := MustNew(cfg, rng.New(1))
		st := l.scns[0]
		// Random log-weights spanning a huge dynamic range.
		for f := range st.logW {
			if f < len(rawWeights) {
				v := rawWeights[f]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				st.logW[f] = math.Mod(v, 200) // up to e^±200 ratios
			}
		}
		cover := make([]int, 0, len(cellChoices))
		cells := make([]int, 0, len(cellChoices))
		for i, c := range cellChoices {
			cover = append(cover, i)
			cells = append(cells, int(c)%cfg.Cells)
		}
		probs := l.probabilities(st, cover, cells)
		sum := 0.0
		for _, p := range probs {
			if p < -1e-12 || p > 1+1e-9 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		want := float64(cfg.Capacity)
		if len(cover) <= cfg.Capacity {
			want = float64(len(cover))
		}
		return math.Abs(sum-want) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecideFeasibilityQuick property-tests the full Decide pipeline on
// random views: assignments always satisfy coverage and capacity.
func TestDecideFeasibilityQuick(t *testing.T) {
	check := func(seed uint64, layout []uint8) bool {
		if len(layout) == 0 {
			return true
		}
		r := rng.New(seed)
		numSCNs := 1 + int(layout[0]%4)
		cfg := Config{
			SCNs: numSCNs, Capacity: 3, Alpha: 1, Beta: 6,
			Cells: 8, KMax: 40, Horizon: 500,
		}
		l := MustNew(cfg, rng.New(seed+1))
		view := &policy.SlotView{SCNs: make([]policy.SCNView, numSCNs)}
		idx := 0
		for _, b := range layout {
			m := int(b>>4) % numSCNs
			view.SCNs[m].Cover = append(view.SCNs[m].Cover, idx)
			view.Cells = append(view.Cells, int(b)%cfg.Cells)
			idx++
		}
		view.NumTasks = idx
		assigned := l.Decide(view)
		if err := policy.ValidateAssignment(view, assigned, cfg.Capacity); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		// Feedback with arbitrary outcomes must never corrupt state.
		fb := &policy.Feedback{}
		for taskIdx, m := range assigned {
			if m < 0 {
				continue
			}
			fb.Execs = append(fb.Execs, policy.Exec{
				SCN: m, Task: taskIdx, Cell: view.Cells[taskIdx],
				U: r.Float64(), V: float64(r.Intn(2)), Q: r.Uniform(1, 2),
			})
		}
		l.Observe(view, assigned, fb)
		for m := 0; m < numSCNs; m++ {
			for _, w := range l.Weights(m) {
				if math.IsNaN(w) || math.IsInf(w, 0) {
					return false
				}
			}
			l1, l2 := l.Multipliers(m)
			if l1 < 0 || l2 < 0 || math.IsNaN(l1) || math.IsNaN(l2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectionTracksProbabilities verifies the end-to-end selection
// frequency of a single SCN tracks the computed probabilities (the property
// the importance-weighted estimator relies on).
func TestSelectionTracksProbabilities(t *testing.T) {
	cfg := Config{
		SCNs: 1, Capacity: 2, Alpha: 0, Beta: 100,
		Cells: 2, KMax: 6, Horizon: 100000,
		Gamma: 0.1, Eta: 1e-9, // freeze learning so p stays constant
	}
	l := MustNew(cfg, rng.New(3))
	// Unequal weights: cell 0 heavy.
	l.scns[0].logW[0] = 1.5
	view := makeView(0, [][]int{{0, 0, 1, 1, 1, 1}})
	// Copy out of the arena: Decide below overwrites the probs scratch.
	probs := append([]float64(nil), l.probabilities(l.scns[0], view.SCNs[0].Cover, view.Cells)...)
	counts := make([]float64, 6)
	const rounds = 20000
	for it := 0; it < rounds; it++ {
		assigned := l.Decide(view)
		for taskIdx, m := range assigned {
			if m == 0 {
				counts[taskIdx]++
			}
		}
		// No Observe: weights frozen.
	}
	for i := range counts {
		got := counts[i] / rounds
		if math.Abs(got-probs[i]) > 0.03 {
			t.Fatalf("task %d selected %.3f of rounds, probability %.3f", i, got, probs[i])
		}
	}
}

// TestParallelDecideMatchesSerial pins the bit-identical parallel/serial
// equivalence: forcing the worker heuristic both ways yields the same
// assignment for the same seed.
func TestParallelDecideMatchesSerial(t *testing.T) {
	mk := func() *LFSC {
		return MustNew(Config{
			SCNs: 6, Capacity: 4, Alpha: 2, Beta: 8,
			Cells: 27, KMax: 80, Horizon: 1000,
		}, rng.New(9))
	}
	// Build a big view (over the parallel threshold) shared by both runs.
	r := rng.New(10)
	cells := make([][]int, 6)
	for m := range cells {
		n := 50 + r.Intn(30)
		cells[m] = make([]int, n)
		for i := range cells[m] {
			cells[m][i] = r.Intn(27)
		}
	}
	view := makeView(0, cells)
	a := mk().Decide(view)
	b := mk().Decide(view)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("repeated parallel Decide diverged for equal seeds")
		}
	}
}
