package core

import (
	"math"

	"lfsc/internal/obs"
)

// Snapshot implements obs.Snapshotter: it copies the learner's internal
// state into the caller-owned snapshot buffers — per-SCN Lagrange
// multipliers, the effective (γ, η, δ) schedule, per-SCN weight entropy,
// the size of the Exp3.M capped set S' from the most recent Decide, and
// the exploration mass (softmax weight below the uniform share, the mass
// selection reaches only through γ-mixing).
//
// Snapshot only reads learner state; it never touches an RNG stream or
// any scratch arena, so sampling it mid-run cannot perturb results. It
// must be called from the goroutine driving Decide/Observe (the
// simulator's loop), between slots — the same single-writer rule the
// scratch arenas already impose. Repeated calls into the same snapshot
// are allocation-free once its buffers have grown to the SCN count.
func (l *LFSC) Snapshot(into *obs.PolicySnapshot) {
	n := len(l.scns)
	into.Policy = l.Name()
	into.Gamma, into.Eta, into.Delta = l.gamma, l.eta, l.delta
	lam1 := obs.GrowFloats(&into.Lambda1, n)
	lam2 := obs.GrowFloats(&into.Lambda2, n)
	entropy := obs.GrowFloats(&into.Entropy, n)
	explore := obs.GrowFloats(&into.ExplorationMass, n)
	capped := obs.GrowInts(&into.CappedCells, n)
	for m, st := range l.scns {
		if st == nil {
			continue // partial learner: another shard fills this SCN's entry
		}
		lam1[m], lam2[m] = st.lambda1, st.lambda2
		entropy[m], explore[m] = weightEntropy(st.logW)
		capped[m] = len(st.cappedList)
	}
}

// weightEntropy computes, over the softmax of one SCN's log-weights, the
// normalized entropy H/ln(F) ∈ [0,1] and the probability mass on cells
// below the uniform share 1/F. Log-sum-exp with a max shift keeps the
// softmax exact for the e^±60 dynamic range the weights legitimately span.
func weightEntropy(logW []float64) (normEntropy, lowMass float64) {
	f := len(logW)
	if f <= 1 {
		return 0, 0
	}
	maxLog := math.Inf(-1)
	for _, lw := range logW {
		if lw > maxLog {
			maxLog = lw
		}
	}
	sum := 0.0
	for _, lw := range logW {
		sum += math.Exp(lw - maxLog)
	}
	logZ := maxLog + math.Log(sum)
	uniform := 1 / float64(f)
	h := 0.0
	for _, lw := range logW {
		p := math.Exp(lw - logZ)
		if p > 0 {
			h -= p * (lw - logZ)
		}
		if p < uniform {
			lowMass += p
		}
	}
	return h / math.Log(float64(f)), lowMass
}
