package core

import (
	"math"
	"testing"

	"lfsc/internal/policy"
	"lfsc/internal/rng"
)

func testConfig() Config {
	return Config{
		SCNs:     2,
		Capacity: 3,
		Alpha:    1,
		Beta:     5,
		Cells:    4,
		KMax:     10,
		Horizon:  1000,
	}
}

// makeView builds a single-slot view where SCN m sees tasks with the given
// hypercube cells. Task indices are global and unique across SCNs.
func makeView(t int, cellsPerSCN [][]int) *policy.SlotView {
	v := &policy.SlotView{T: t}
	idx := 0
	for _, cells := range cellsPerSCN {
		var scn policy.SCNView
		for _, c := range cells {
			scn.Cover = append(scn.Cover, idx)
			v.Cells = append(v.Cells, c)
			idx++
		}
		v.SCNs = append(v.SCNs, scn)
	}
	v.NumTasks = idx
	return v
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.SCNs = 0 },
		func(c *Config) { c.Capacity = 0 },
		func(c *Config) { c.Cells = 0 },
		func(c *Config) { c.KMax = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Alpha = -1 },
		func(c *Config) { c.Gamma = 1.5 },
		func(c *Config) { c.Eta = -1 },
	}
	for i, mutate := range bad {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestScheduleDefaults(t *testing.T) {
	cfg := Config{SCNs: 30, Capacity: 20, Cells: 27, KMax: 200, Horizon: 10000}
	gamma, eta, delta := cfg.Schedule()
	if gamma <= 0 || gamma > 1 {
		t.Fatalf("gamma = %v", gamma)
	}
	if eta <= 0 || eta >= gamma {
		t.Fatalf("eta = %v (gamma %v)", eta, gamma)
	}
	if delta <= 0 || delta >= eta {
		t.Fatalf("delta = %v (eta %v)", delta, eta)
	}
	// Overrides are honoured.
	cfg.Gamma, cfg.Eta, cfg.Delta = 0.5, 0.01, 0.001
	g2, e2, d2 := cfg.Schedule()
	if g2 != 0.5 || e2 != 0.01 || d2 != 0.001 {
		t.Fatal("overrides ignored")
	}
	// K close to c keeps the log positive.
	small := Config{SCNs: 1, Capacity: 20, Cells: 4, KMax: 21, Horizon: 100}
	if g, _, _ := small.Schedule(); g <= 0 || g > 1 || math.IsNaN(g) {
		t.Fatalf("near-c gamma = %v", g)
	}
}

func TestProbabilitiesSumToCapacity(t *testing.T) {
	l := MustNew(testConfig(), rng.New(1))
	view := makeView(0, [][]int{{0, 1, 2, 3, 0, 1, 2, 3}, {}})
	st := l.scns[0]
	probs := l.probabilities(st, view.SCNs[0].Cover, view.Cells)
	sum := 0.0
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of [0,1]", p)
		}
		sum += p
	}
	if math.Abs(sum-float64(l.cfg.Capacity)) > 1e-9 {
		t.Fatalf("Σp = %v, want %d", sum, l.cfg.Capacity)
	}
}

func TestProbabilitiesFewTasks(t *testing.T) {
	l := MustNew(testConfig(), rng.New(2))
	view := makeView(0, [][]int{{0, 1}, {}}) // 2 tasks ≤ capacity 3
	probs := l.probabilities(l.scns[0], view.SCNs[0].Cover, view.Cells)
	for _, p := range probs {
		if p != 1 {
			t.Fatalf("K≤c should give p=1, got %v", p)
		}
	}
	if len(l.scns[0].cappedList) != 0 {
		t.Fatal("no capping expected for K≤c")
	}
}

func TestCappingBoundsDominantWeight(t *testing.T) {
	l := MustNew(testConfig(), rng.New(3))
	st := l.scns[0]
	st.logW[0] = math.Log(1e6) // dominant cell
	view := makeView(0, [][]int{{0, 1, 2, 3, 1, 2, 3, 1}, {}})
	probs := l.probabilities(st, view.SCNs[0].Cover, view.Cells)
	if probs[0] > 1+1e-12 {
		t.Fatalf("dominant task probability %v > 1", probs[0])
	}
	if math.Abs(probs[0]-1) > 1e-9 {
		t.Fatalf("dominant task should be capped at exactly 1, got %v", probs[0])
	}
	if !st.capped[0] {
		t.Fatal("dominant cell not in S'")
	}
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-3) > 1e-9 {
		t.Fatalf("Σp = %v after capping", sum)
	}
}

func TestSolveCapFixedPoint(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 200; trial++ {
		k := 5 + r.Intn(20)
		c := 1 + r.Intn(3)
		gamma := r.Uniform(0.01, 0.5)
		tau := (1/float64(c) - gamma/float64(k)) / (1 - gamma)
		w := make([]float64, k)
		sum := 0.0
		maxW := 0.0
		for i := range w {
			w[i] = math.Exp(r.Uniform(0, 10))
			sum += w[i]
			if w[i] > maxW {
				maxW = w[i]
			}
		}
		if tau <= 0 || maxW < tau*sum {
			continue
		}
		eps := solveCap(w, tau)
		capSum := 0.0
		for _, v := range w {
			capSum += math.Min(v, eps)
		}
		if math.Abs(eps-tau*capSum) > 1e-6*math.Max(1, eps) {
			t.Fatalf("trial %d: ε=%v not a fixed point (τΣmin=%v)", trial, eps, tau*capSum)
		}
	}
}

func TestDecideFeasible(t *testing.T) {
	for _, mode := range []SelectionMode{DepRoundMode, Race, Deterministic} {
		cfg := testConfig()
		cfg.Mode = mode
		l := MustNew(cfg, rng.New(5))
		view := makeView(0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1, 2}})
		assigned := l.Decide(view)
		if err := policy.ValidateAssignment(view, assigned, cfg.Capacity); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		// With more tasks than capacity and all-positive probabilities,
		// the greedy fills every beam.
		count := 0
		for _, m := range assigned {
			if m >= 0 {
				count++
			}
		}
		if count != 2*cfg.Capacity {
			t.Fatalf("mode %v: assigned %d, want %d", mode, count, 2*cfg.Capacity)
		}
	}
}

func TestDecideDeterministicGivenSeed(t *testing.T) {
	mk := func() []int {
		l := MustNew(testConfig(), rng.New(42))
		return l.Decide(makeView(0, [][]int{{0, 1, 2, 3, 0}, {1, 2, 3, 0}}))
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different decisions")
		}
	}
}

// runSlot executes one Decide/Observe round against a synthetic ground
// truth mapping cell → (u, pComplete, q) shared by both SCNs.
func runSlot(l *LFSC, view *policy.SlotView, truth map[int][3]float64, r *rng.Stream) []int {
	assigned := l.Decide(view)
	fb := &policy.Feedback{}
	for taskIdx, m := range assigned {
		if m < 0 {
			continue
		}
		cell := view.Cells[taskIdx]
		tr := truth[cell]
		v := 0.0
		if r.Bernoulli(tr[1]) {
			v = 1
		}
		fb.Execs = append(fb.Execs, policy.Exec{
			SCN: m, Task: taskIdx, Cell: cell, U: tr[0], V: v, Q: tr[2],
		})
	}
	l.Observe(view, assigned, fb)
	return assigned
}

func TestWeightsLearnGoodCell(t *testing.T) {
	cfg := Config{
		SCNs: 1, Capacity: 2, Alpha: 0, Beta: 100,
		Cells: 2, KMax: 8, Horizon: 3000,
		Gamma: 0.1, // faster learning for the test
	}
	l := MustNew(cfg, rng.New(6))
	r := rng.New(7)
	truth := map[int][3]float64{
		0: {0.9, 1.0, 1.0}, // great cell: compound 0.9
		1: {0.1, 0.5, 2.0}, // poor cell: compound 0.025
	}
	for t0 := 0; t0 < 3000; t0++ {
		view := makeView(t0, [][]int{{0, 0, 0, 0, 1, 1, 1, 1}})
		runSlot(l, view, truth, r)
	}
	w := l.Weights(0)
	if w[0] <= w[1] {
		t.Fatalf("good cell weight %v not above poor cell %v", w[0], w[1])
	}
	// Selection should now prefer the good cell strongly.
	good, poor := 0, 0
	for t0 := 0; t0 < 200; t0++ {
		view := makeView(t0, [][]int{{0, 0, 0, 0, 1, 1, 1, 1}})
		assigned := l.Decide(view)
		for taskIdx, m := range assigned {
			if m < 0 {
				continue
			}
			if taskIdx < 4 {
				good++
			} else {
				poor++
			}
		}
		// feed back so probs stay consistent
		fb := &policy.Feedback{}
		l.Observe(view, assigned, fb)
	}
	if good <= 2*poor {
		t.Fatalf("learned policy picks good cell %d vs poor %d", good, poor)
	}
}

func TestLagrangianRespondsToViolations(t *testing.T) {
	cfg := Config{
		SCNs: 1, Capacity: 4, Alpha: 4, Beta: 1, // impossible: forces both violations
		Cells: 2, KMax: 8, Horizon: 1000, Gamma: 0.1,
	}
	l := MustNew(cfg, rng.New(8))
	r := rng.New(9)
	truth := map[int][3]float64{
		0: {0.5, 0.2, 2.0}, // rarely completes, heavy
		1: {0.5, 0.2, 2.0},
	}
	for t0 := 0; t0 < 200; t0++ {
		view := makeView(t0, [][]int{{0, 0, 0, 1, 1, 1, 0, 1}})
		runSlot(l, view, truth, r)
	}
	l1, l2 := l.Multipliers(0)
	if l1 <= 0 {
		t.Fatalf("λ1 = %v should grow under persistent QoS violation", l1)
	}
	if l2 <= 0 {
		t.Fatalf("λ2 = %v should grow under persistent resource violation", l2)
	}
}

func TestLagrangianDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.DisableLagrangian = true
	cfg.Alpha, cfg.Beta = 100, 0 // would force violations
	l := MustNew(cfg, rng.New(10))
	r := rng.New(11)
	truth := map[int][3]float64{0: {0.5, 0.5, 1.5}, 1: {0.5, 0.5, 1.5}, 2: {0.5, 0.5, 1.5}, 3: {0.5, 0.5, 1.5}}
	for t0 := 0; t0 < 50; t0++ {
		view := makeView(t0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
		runSlot(l, view, truth, r)
	}
	l1, l2 := l.Multipliers(0)
	if l1 != 0 || l2 != 0 {
		t.Fatal("disabled Lagrangian still moved multipliers")
	}
}

func TestLambdaStaysBounded(t *testing.T) {
	cfg := testConfig()
	cfg.Eta, cfg.Delta = 0.5, 0.1 // aggressive to hit the cap quickly
	cfg.Alpha = 1000              // enormous persistent violation
	l := MustNew(cfg, rng.New(12))
	r := rng.New(13)
	truth := map[int][3]float64{0: {0, 0, 1}, 1: {0, 0, 1}, 2: {0, 0, 1}, 3: {0, 0, 1}}
	for t0 := 0; t0 < 500; t0++ {
		view := makeView(t0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
		runSlot(l, view, truth, r)
	}
	l1, _ := l.Multipliers(0)
	if l1 > 1/cfg.Delta+1e-9 {
		t.Fatalf("λ1 = %v exceeds 1/δ = %v", l1, 1/cfg.Delta)
	}
}

func TestWeightsRemainFinite(t *testing.T) {
	cfg := testConfig()
	cfg.Eta = 1.0 // pathologically large learning rate
	l := MustNew(cfg, rng.New(14))
	r := rng.New(15)
	truth := map[int][3]float64{0: {1, 1, 1}, 1: {1, 1, 1}, 2: {1, 1, 1}, 3: {1, 1, 1}}
	for t0 := 0; t0 < 2000; t0++ {
		view := makeView(t0, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1}})
		runSlot(l, view, truth, r)
	}
	for m := 0; m < cfg.SCNs; m++ {
		for _, w := range l.Weights(m) {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				t.Fatalf("log-weight degenerated to %v", w)
			}
		}
	}
}

func TestObserveSkipsCappedCells(t *testing.T) {
	cfg := testConfig()
	cfg.WeightDecay = -1 // disable forgetting so "skipped" means "unchanged"
	l := MustNew(cfg, rng.New(16))
	st := l.scns[0]
	st.logW[0] = math.Log(1e8) // force cell 0 into S'
	view := makeView(0, [][]int{{0, 1, 2, 3, 1, 2, 3, 1}, {}})
	assigned := l.Decide(view)
	before := st.logW[0]
	fb := &policy.Feedback{}
	for taskIdx, m := range assigned {
		if m != 0 {
			continue
		}
		fb.Execs = append(fb.Execs, policy.Exec{SCN: 0, Task: taskIdx, Cell: view.Cells[taskIdx], U: 1, V: 1, Q: 1})
	}
	l.Observe(view, assigned, fb)
	if st.logW[0] != before {
		t.Fatalf("capped cell weight changed: %v → %v", before, st.logW[0])
	}
}

func TestEmptySlot(t *testing.T) {
	l := MustNew(testConfig(), rng.New(17))
	view := makeView(0, [][]int{{}, {}})
	assigned := l.Decide(view)
	if len(assigned) != 0 {
		t.Fatalf("empty slot assignment length %d", len(assigned))
	}
	l.Observe(view, assigned, &policy.Feedback{})
}

func BenchmarkDecidePaperScale(b *testing.B) {
	cfg := Config{
		SCNs: 30, Capacity: 20, Alpha: 15, Beta: 27,
		Cells: 27, KMax: 200, Horizon: 10000,
	}
	l := MustNew(cfg, rng.New(1))
	r := rng.New(2)
	cells := make([][]int, 30)
	for m := range cells {
		n := 35 + r.Intn(66)
		cells[m] = make([]int, n)
		for i := range cells[m] {
			cells[m][i] = r.Intn(27)
		}
	}
	view := makeView(0, cells)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Decide(view)
	}
}
