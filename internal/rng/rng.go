// Package rng provides deterministic, splittable pseudo-random number
// generation for the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: every
// figure must be regenerable bit-for-bit from a seed printed in its header.
// The standard library's math/rand/v2 sources are excellent but do not give
// us a documented, stable way to derive many independent streams from one
// master seed. This package implements:
//
//   - SplitMix64: a tiny, well-studied generator used purely as a seed
//     deriver (its output is equidistributed over 64 bits and a single
//     step is enough to decorrelate sequential seeds).
//   - PCG32 (XSH-RR 64/32): the workhorse generator. Each PCG stream is
//     identified by a (state, sequence) pair; distinct odd sequence
//     increments yield statistically independent streams, which is exactly
//     what we need for per-SCN, per-policy and per-goroutine RNGs.
//
// All distribution helpers (Uniform, Bernoulli, Exponential, Normal,
// Lognormal, Zipf-ish integer ranges, permutations) live on *Stream so that
// simulation code never touches global state.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a PCG32 pseudo-random stream. The zero value is NOT usable;
// construct streams with New or Derive.
type Stream struct {
	state uint64
	inc   uint64 // odd
	root  uint64 // immutable identity captured at construction, used by Derive
}

// New returns a stream seeded from seed with the default sequence.
func New(seed uint64) *Stream {
	return NewSeq(seed, 0xda3e39cb94b95bdb)
}

// NewSeq returns a stream with an explicit sequence selector. Streams with
// different sequence selectors are independent even for equal seeds.
func NewSeq(seed, seq uint64) *Stream {
	s := &Stream{}
	s.init(seed, seq)
	return s
}

// init seeds s in place; it is the allocation-free core of NewSeq.
func (s *Stream) init(seed, seq uint64) {
	s.inc = (seq << 1) | 1
	s.state = 0
	s.Uint32()
	mixed := seed
	s.state += splitMix64(&mixed)
	s.Uint32()
	s.root = seed ^ (seq * 0x9e3779b97f4a7c15)
}

// Derive deterministically derives an independent child stream. The label
// distinguishes children derived from the same parent; calling Derive twice
// with the same label yields identical streams, so callers should use
// distinct labels (e.g. SCN index, seed replica index).
//
// Derive does not advance the parent stream, making stream layout
// independent of call order.
func (s *Stream) Derive(label uint64) *Stream {
	d := &Stream{}
	s.DeriveInto(label, d)
	return d
}

// DeriveInto is Derive without the heap allocation: it overwrites dst with
// the state of the child stream for label, producing a stream bit-identical
// to Derive(label). Hot loops keep a stack-allocated Stream value and call
// DeriveInto per slot/task instead of allocating a fresh child each time.
func (s *Stream) DeriveInto(label uint64, dst *Stream) {
	st := s.root ^ (0x9e3779b97f4a7c15 * (label + 1))
	sq := (s.inc >> 1) ^ (0xd1342543de82ef95 * (label + 0x632be59bd9b4e019))
	// One extra mixing round each so that close labels map to distant states.
	dst.init(splitMix64(&st), splitMix64(&sq))
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Stream) Uint32() uint32 {
	old := s.state
	s.state = old*6364136223846793005 + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	hi := uint64(s.Uint32())
	lo := uint64(s.Uint32())
	return hi<<32 | lo
}

// Float64 returns a uniform float64 in [0,1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo,hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint32(n)
	threshold := -bound % bound
	for {
		r := s.Uint32()
		m := uint64(r) * uint64(bound)
		if uint32(m) >= threshold {
			return int(m >> 32)
		}
	}
}

// IntRange returns a uniform int in [lo,hi] inclusive. It panics if hi < lo.
func (s *Stream) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exponential returns an exponentially distributed value with rate lambda.
func (s *Stream) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u) / lambda
}

// Normal returns a normally distributed value (Box–Muller, no caching so the
// stream state is a pure function of the number of calls).
func (s *Stream) Normal(mean, stddev float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Lognormal returns exp(Normal(mu, sigma)).
func (s *Stream) Lognormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// TruncNormal returns a normal sample rejected into [lo,hi]. If the window is
// more than ~6 sigma from the mean this could spin; callers use it with
// windows overlapping the bulk of the distribution.
func (s *Stream) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	for i := 0; i < 1024; i++ {
		v := s.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	// Pathological parameters: fall back to uniform to stay total.
	return s.Uniform(lo, hi)
}

// Perm fills a permutation of [0,n) using Fisher–Yates.
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0,n) in random
// order. If k >= n it returns a full permutation.
func (s *Stream) Sample(n, k int) []int {
	if k >= n {
		return s.Perm(n)
	}
	// Partial Fisher–Yates: only the first k slots are materialised.
	idx := make(map[int]int, 2*k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		vj, ok := idx[j]
		if !ok {
			vj = j
		}
		vi, ok := idx[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		idx[j] = vi
	}
	return out
}

// Categorical draws an index in [0,len(weights)) with probability
// proportional to weights[i]. Zero-total weights fall back to uniform.
func (s *Stream) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.Intn(len(weights))
	}
	x := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// State captures the stream's exact internal state as a (state, inc, root)
// triple, for checkpointing. Restoring the triple into any Stream resumes
// the sequence bit-identically: the triple IS the stream.
func (s *Stream) State() [3]uint64 {
	return [3]uint64{s.state, s.inc, s.root}
}

// Restore overwrites the stream with a previously captured State triple.
// It reports whether the triple is structurally valid (the PCG increment
// must be odd); an invalid triple leaves the stream untouched, so callers
// can validate a whole checkpoint before committing any of it.
func (s *Stream) Restore(st [3]uint64) bool {
	if st[1]&1 == 0 {
		return false
	}
	s.state, s.inc, s.root = st[0], st[1], st[2]
	return true
}
