package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with adjacent seeds agree on %d/1000 outputs", same)
	}
}

func TestNewSeqIndependence(t *testing.T) {
	a := NewSeq(7, 1)
	b := NewSeq(7, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with distinct sequences agree on %d/1000 outputs", same)
	}
}

func TestDeriveDeterministicAndStable(t *testing.T) {
	parent := New(99)
	c1 := parent.Derive(5)
	// Consuming from the parent must not change future derivations.
	parent.Uint64()
	c2 := parent.Derive(5)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Derive depends on parent consumption")
		}
	}
}

func TestDeriveDistinctLabels(t *testing.T) {
	parent := New(99)
	a := parent.Derive(0)
	b := parent.Derive(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent-label children agree on %d/1000 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	if err := quick.Check(func(n uint8) bool {
		m := int(n%100) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(6)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		counts[s.Intn(7)]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-n/7.0) > 500 {
			t.Fatalf("Intn(7) digit %d count %d too far from %d", d, c, n/7)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.IntRange(35, 100)
		if v < 35 || v > 100 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	if got := s.IntRange(5, 5); got != 5 {
		t.Fatalf("degenerate IntRange = %d", got)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(8)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical %v", p)
	}
	if s.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exponential(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exponential(2) mean %v, want ~0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(10)
	sum, sumsq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Normal(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Normal mean %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("Normal variance %v, want ~4", variance)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		v := s.TruncNormal(0.5, 0.3, 0.2, 0.8)
		if v < 0.2 || v > 0.8 {
			t.Fatalf("TruncNormal out of window: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	s := New(13)
	if err := quick.Check(func(a, b uint8) bool {
		n := int(a%50) + 1
		k := int(b % 60)
		out := s.Sample(n, k)
		want := k
		if k > n {
			want = n
		}
		if len(out) != want {
			return false
		}
		seen := map[int]bool{}
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleUniformCoverage(t *testing.T) {
	s := New(14)
	counts := make([]int, 10)
	const rounds = 50000
	for i := 0; i < rounds; i++ {
		for _, v := range s.Sample(10, 3) {
			counts[v]++
		}
	}
	want := float64(rounds) * 3 / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("Sample coverage of %d = %d, want ~%v", i, c, want)
		}
	}
}

func TestCategorical(t *testing.T) {
	s := New(15)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[s.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	p0 := float64(counts[0]) / n
	if math.Abs(p0-0.25) > 0.01 {
		t.Fatalf("Categorical p0 = %v, want ~0.25", p0)
	}
}

func TestCategoricalZeroTotal(t *testing.T) {
	s := New(16)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Categorical([]float64{0, 0, 0})
		if v < 0 || v > 2 {
			t.Fatalf("Categorical fallback out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("zero-total fallback not uniform, saw %v", seen)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(1, 2)
		if v < 1 || v >= 2 {
			t.Fatalf("Uniform(1,2) out of range: %v", v)
		}
	}
}

func TestLognormalPositive(t *testing.T) {
	s := New(18)
	for i := 0; i < 10000; i++ {
		if s.Lognormal(0, 1) <= 0 {
			t.Fatal("Lognormal non-positive")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Float64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(97)
	}
}

func TestStateRestoreResumesBitIdentically(t *testing.T) {
	s := New(99)
	for i := 0; i < 37; i++ {
		s.Uint64()
	}
	st := s.State()
	want := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}

	fresh := New(1) // arbitrary state, fully overwritten by Restore
	if !fresh.Restore(st) {
		t.Fatal("valid state rejected")
	}
	for i, w := range want {
		if got := fresh.Uint64(); got != w {
			t.Fatalf("draw %d after restore = %d, want %d", i, got, w)
		}
	}
	// Derive identity survives the round trip too (root is part of State).
	a, b := s.Derive(7), fresh.Derive(7)
	if a.Uint64() != b.Uint64() {
		t.Fatal("derived children diverge after restore")
	}
}

func TestRestoreRejectsEvenIncrement(t *testing.T) {
	s := New(3)
	before := s.State()
	if s.Restore([3]uint64{1, 2, 3}) {
		t.Fatal("even increment accepted")
	}
	if s.State() != before {
		t.Fatal("failed restore mutated the stream")
	}
}
