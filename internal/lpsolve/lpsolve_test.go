package lpsolve

import (
	"math"
	"testing"

	"lfsc/internal/rng"
)

func solveOrFail(t *testing.T, p *Problem) Solution {
	t.Helper()
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestTextbookLP(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, z=36.
	p := NewProblem(2)
	p.SetObjective([]float64{3, 5})
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	s := solveOrFail(t, p)
	if math.Abs(s.Objective-36) > 1e-6 {
		t.Fatalf("objective = %v, want 36", s.Objective)
	}
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-6) > 1e-6 {
		t.Fatalf("x = %v, want (2,6)", s.X)
	}
}

func TestGEConstraintsTwoPhase(t *testing.T) {
	// max -x - y s.t. x + y ≥ 3, x ≤ 5, y ≤ 5 → x+y=3, z=-3.
	p := NewProblem(2)
	p.SetObjective([]float64{-1, -1})
	p.AddConstraint([]float64{1, 1}, GE, 3)
	p.AddBound(0, 5)
	p.AddBound(1, 5)
	s := solveOrFail(t, p)
	if math.Abs(s.Objective-(-3)) > 1e-6 {
		t.Fatalf("objective = %v, want -3", s.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x + 2y s.t. x + y = 4, y ≤ 3 → x=1, y=3, z=7.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 2})
	p.AddConstraint([]float64{1, 1}, EQ, 4)
	p.AddConstraint([]float64{0, 1}, LE, 3)
	s := solveOrFail(t, p)
	if math.Abs(s.Objective-7) > 1e-6 {
		t.Fatalf("objective = %v, want 7", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	if s := p.Solve(); s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{1, 0})
	p.AddConstraint([]float64{0, 1}, LE, 1)
	if s := p.Solve(); s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNoConstraints(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{-1, -2})
	s := p.Solve()
	if s.Status != Optimal || s.Objective != 0 {
		t.Fatalf("negative objective with no constraints: %v", s)
	}
	p2 := NewProblem(1)
	p2.SetObjective([]float64{1})
	if s := p2.Solve(); s.Status != Unbounded {
		t.Fatal("positive objective with no constraints should be unbounded")
	}
}

func TestNegativeRHS(t *testing.T) {
	// x ≤ -1 with x ≥ 0 is infeasible.
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{1}, LE, -1)
	if s := p.Solve(); s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
	// -x ≤ -2 means x ≥ 2.
	p2 := NewProblem(1)
	p2.SetObjective([]float64{-1})
	p2.AddConstraint([]float64{-1}, LE, -2)
	p2.AddBound(0, 10)
	s := solveOrFail(t, p2)
	if math.Abs(s.Objective-(-2)) > 1e-6 {
		t.Fatalf("objective = %v, want -2", s.Objective)
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// Classic Beale cycling example (cycles under naive Dantzig pivoting).
	p := NewProblem(4)
	p.SetObjective([]float64{0.75, -150, 0.02, -6})
	p.AddConstraint([]float64{0.25, -60, -1.0 / 25, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -1.0 / 50, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	s := solveOrFail(t, p)
	if math.Abs(s.Objective-0.05) > 1e-6 {
		t.Fatalf("Beale objective = %v, want 0.05", s.Objective)
	}
}

func TestValidationPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("NewProblem(0)", func() { NewProblem(0) })
	assertPanics("objective mismatch", func() { NewProblem(2).SetObjective([]float64{1}) })
	assertPanics("constraint mismatch", func() { NewProblem(2).AddConstraint([]float64{1}, LE, 1) })
	assertPanics("NaN coef", func() { NewProblem(1).AddConstraint([]float64{math.NaN()}, LE, 1) })
	assertPanics("Inf rhs", func() { NewProblem(1).AddConstraint([]float64{1}, LE, math.Inf(1)) })
}

// enumerateVertices brute-forces tiny LPs: tries all constraint subsets of
// size n as equalities, solves the linear system, keeps feasible points.
func bruteForceLP2D(obj [2]float64, cons [][3]float64) (float64, bool) {
	// cons rows are a,b,rhs meaning ax+by ≤ rhs. Variables x,y ≥ 0.
	// Add axes x=0, y=0 as candidate active constraints.
	lines := append([][3]float64{}, cons...)
	lines = append(lines, [3]float64{-1, 0, 0}, [3]float64{0, -1, 0})
	best := math.Inf(-1)
	found := false
	feasible := func(x, y float64) bool {
		if x < -1e-9 || y < -1e-9 {
			return false
		}
		for _, c := range cons {
			if c[0]*x+c[1]*y > c[2]+1e-9 {
				return false
			}
		}
		return true
	}
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			a1, b1, c1 := lines[i][0], lines[i][1], lines[i][2]
			a2, b2, c2 := lines[j][0], lines[j][1], lines[j][2]
			det := a1*b2 - a2*b1
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (c1*b2 - c2*b1) / det
			y := (a1*c2 - a2*c1) / det
			if feasible(x, y) {
				found = true
				if v := obj[0]*x + obj[1]*y; v > best {
					best = v
				}
			}
		}
	}
	return best, found
}

func TestRandomLPsAgainstVertexEnumeration(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 300; trial++ {
		nc := 2 + r.Intn(4)
		cons := make([][3]float64, nc)
		for i := range cons {
			cons[i] = [3]float64{r.Uniform(0.1, 2), r.Uniform(0.1, 2), r.Uniform(1, 5)}
		}
		obj := [2]float64{r.Uniform(0.1, 3), r.Uniform(0.1, 3)}
		want, ok := bruteForceLP2D(obj, cons)
		if !ok {
			continue
		}
		p := NewProblem(2)
		p.SetObjective(obj[:])
		for _, c := range cons {
			p.AddConstraint([]float64{c[0], c[1]}, LE, c[2])
		}
		s := p.Solve()
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		if math.Abs(s.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %v != enumeration %v", trial, s.Objective, want)
		}
	}
}

func TestOffloadingRelaxation(t *testing.T) {
	// 2 SCNs × 3 tasks, LP relaxation of ILP (1): x in [0,1], per-SCN
	// cardinality ≤ 2, per-task total ≤ 1. Fractional optimum must be ≥ any
	// integral assignment's value.
	g := [][]float64{{0.9, 0.5, 0.4}, {0.8, 0.7, 0.2}}
	p := NewProblem(6) // x[m][i] at index 3m+i
	obj := make([]float64, 6)
	for m := 0; m < 2; m++ {
		for i := 0; i < 3; i++ {
			obj[3*m+i] = g[m][i]
		}
	}
	p.SetObjective(obj)
	for m := 0; m < 2; m++ {
		row := make([]float64, 6)
		for i := 0; i < 3; i++ {
			row[3*m+i] = 1
		}
		p.AddConstraint(row, LE, 2)
	}
	for i := 0; i < 3; i++ {
		row := make([]float64, 6)
		row[i], row[3+i] = 1, 1
		p.AddConstraint(row, LE, 1)
	}
	for v := 0; v < 6; v++ {
		p.AddBound(v, 1)
	}
	s := solveOrFail(t, p)
	// Best integral: SCN0 gets task0 (0.9), SCN1 gets task1 (0.7) and
	// task2 (0.2) → 1.8. LP can't beat picking the max per task: 0.9+0.7+0.4=2.0.
	if s.Objective < 1.8-1e-9 {
		t.Fatalf("LP relaxation %v below integral optimum 1.8", s.Objective)
	}
	if s.Objective > 2.0+1e-9 {
		t.Fatalf("LP relaxation %v above trivial bound 2.0", s.Objective)
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	r := rng.New(3)
	const vars, cons = 60, 40
	obj := make([]float64, vars)
	for i := range obj {
		obj[i] = r.Float64()
	}
	rows := make([][]float64, cons)
	for i := range rows {
		rows[i] = make([]float64, vars)
		for j := range rows[i] {
			rows[i][j] = r.Float64()
		}
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		p := NewProblem(vars)
		p.SetObjective(obj)
		for _, row := range rows {
			p.AddConstraint(row, LE, 10)
		}
		if s := p.Solve(); s.Status != Optimal {
			b.Fatal("not optimal")
		}
	}
}
