// Package lpsolve is a dense two-phase primal simplex solver for small
// linear programs, written against Go's stdlib only.
//
// The repository uses it for the fractional relaxation of the paper's
// per-slot ILP (1): maximise Σ g·x subject to per-SCN cardinality (1a),
// per-task uniqueness (1b), the QoS floor (1c) and the capacity ceiling
// (1d), with x ∈ [0,1]. The LP optimum upper-bounds every integral policy,
// which gives the tests an independent certificate that the Oracle and the
// exact ILP solver (internal/ilp, branch & bound on top of this package)
// are correct.
//
// The implementation is a textbook dense tableau with Bland's rule, which
// cannot cycle. It is O(rows·cols) per pivot — perfectly adequate for the
// few-hundred-variable instances the tests and the small-scale oracle
// solve, and deliberately simple enough to audit.
package lpsolve

import (
	"fmt"
	"math"
)

// Sense is a constraint direction.
type Sense int

const (
	// LE is a ≤ constraint.
	LE Sense = iota
	// EQ is an = constraint.
	EQ
	// GE is a ≥ constraint.
	GE
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal bounded solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies all constraints.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

type constraint struct {
	coefs []float64
	sense Sense
	rhs   float64
}

// Problem is a linear program: maximise obj·x subject to constraints and
// x ≥ 0. Upper bounds on variables are ordinary ≤ constraints (AddBound).
type Problem struct {
	n    int
	obj  []float64
	cons []constraint
}

// NewProblem creates a problem with n non-negative variables and a zero
// objective.
func NewProblem(n int) *Problem {
	if n <= 0 {
		panic("lpsolve: need at least one variable")
	}
	return &Problem{n: n, obj: make([]float64, n)}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.n }

// SetObjective sets the maximisation objective coefficients.
func (p *Problem) SetObjective(coefs []float64) {
	if len(coefs) != p.n {
		panic("lpsolve: objective length mismatch")
	}
	copy(p.obj, coefs)
}

// AddConstraint appends coefs·x (sense) rhs. The coefficient slice is
// copied. Sparse callers can pass a full-length slice with zeros.
func (p *Problem) AddConstraint(coefs []float64, sense Sense, rhs float64) {
	if len(coefs) != p.n {
		panic("lpsolve: constraint length mismatch")
	}
	for _, v := range coefs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic("lpsolve: non-finite coefficient")
		}
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		panic("lpsolve: non-finite rhs")
	}
	p.cons = append(p.cons, constraint{
		coefs: append([]float64(nil), coefs...),
		sense: sense,
		rhs:   rhs,
	})
}

// AddBound appends x_i ≤ ub.
func (p *Problem) AddBound(i int, ub float64) {
	coefs := make([]float64, p.n)
	coefs[i] = 1
	p.AddConstraint(coefs, LE, ub)
}

// Solution is the result of Solve.
type Solution struct {
	// Status reports feasibility/boundedness.
	Status Status
	// X is the optimal point (nil unless Optimal).
	X []float64
	// Objective is obj·X (0 unless Optimal).
	Objective float64
}

const tol = 1e-9

// Solve runs two-phase simplex and returns the solution.
func (p *Problem) Solve() Solution {
	m := len(p.cons)
	if m == 0 {
		// No constraints: optimum is 0 if obj ≤ 0, otherwise unbounded.
		for _, c := range p.obj {
			if c > tol {
				return Solution{Status: Unbounded}
			}
		}
		return Solution{Status: Optimal, X: make([]float64, p.n)}
	}

	// Column layout: [x(0..n-1) | slack/surplus(one per constraint where
	// applicable) | artificial(one per constraint needing it)] + rhs.
	numSlack := 0
	for _, c := range p.cons {
		if c.sense != EQ {
			numSlack++
		}
	}
	// Normalise rhs ≥ 0 first to know which rows need artificials.
	rows := make([]constraint, m)
	for i, c := range p.cons {
		rows[i] = constraint{coefs: append([]float64(nil), c.coefs...), sense: c.sense, rhs: c.rhs}
		if rows[i].rhs < 0 {
			for j := range rows[i].coefs {
				rows[i].coefs[j] = -rows[i].coefs[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}
	numArt := 0
	for _, c := range rows {
		if c.sense != LE {
			numArt++
		}
	}
	cols := p.n + numSlack + numArt + 1 // + rhs
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackAt := p.n
	artAt := p.n + numSlack
	for i, c := range rows {
		tab[i] = make([]float64, cols)
		copy(tab[i], c.coefs)
		tab[i][cols-1] = c.rhs
		switch c.sense {
		case LE:
			tab[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			tab[i][slackAt] = -1
			slackAt++
			tab[i][artAt] = 1
			basis[i] = artAt
			artAt++
		case EQ:
			tab[i][artAt] = 1
			basis[i] = artAt
			artAt++
		}
	}

	// Phase 1: minimise sum of artificials ⇔ maximise -Σ art.
	if numArt > 0 {
		phase1 := make([]float64, cols-1)
		for j := p.n + numSlack; j < cols-1; j++ {
			phase1[j] = -1
		}
		z, status := simplex(tab, basis, phase1, cols)
		if status == Unbounded {
			// Cannot happen for a bounded-below phase-1 objective; treat
			// defensively as infeasible.
			return Solution{Status: Infeasible}
		}
		if z < -1e-7 {
			return Solution{Status: Infeasible}
		}
		// Drive any artificial still in the basis (at value 0) out.
		for i := 0; i < m; i++ {
			if basis[i] < p.n+numSlack {
				continue
			}
			pivoted := false
			for j := 0; j < p.n+numSlack; j++ {
				if math.Abs(tab[i][j]) > tol {
					pivot(tab, basis, i, j, cols)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: harmless, artificial stays basic at 0.
				_ = pivoted
			}
		}
	}

	// Phase 2: original objective; artificial columns are frozen by zeroing.
	phase2 := make([]float64, cols-1)
	copy(phase2, p.obj)
	if numArt > 0 {
		for i := range tab {
			for j := p.n + numSlack; j < cols-1; j++ {
				tab[i][j] = 0
			}
		}
	}
	z, status := simplex(tab, basis, phase2, cols)
	if status == Unbounded {
		return Solution{Status: Unbounded}
	}
	x := make([]float64, p.n)
	for i, b := range basis {
		if b < p.n {
			x[b] = tab[i][cols-1]
		}
	}
	return Solution{Status: Optimal, X: x, Objective: z}
}

// simplex maximises obj over the tableau with Bland's rule. It returns the
// objective value at the final basic solution.
func simplex(tab [][]float64, basis []int, obj []float64, cols int) (float64, Status) {
	m := len(tab)
	// Reduced costs row: r_j = obj_j - Σ_i obj_{basis[i]}·tab[i][j].
	for iter := 0; ; iter++ {
		if iter > 100000 {
			// Bland's rule excludes cycling; this guards against a bug
			// degenerating into an endless loop.
			panic("lpsolve: iteration limit exceeded")
		}
		// Compute reduced costs lazily per column, entering = first positive
		// (Bland).
		enter := -1
		for j := 0; j < cols-1; j++ {
			r := obj[j]
			for i := 0; i < m; i++ {
				if c := obj[basis[i]]; c != 0 {
					r -= c * tab[i][j]
				}
			}
			if r > tol {
				enter = j
				break
			}
		}
		if enter == -1 {
			z := 0.0
			for i := 0; i < m; i++ {
				if c := obj[basis[i]]; c != 0 {
					z += c * tab[i][cols-1]
				}
			}
			return z, Optimal
		}
		// Ratio test with Bland tie-break on smallest basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > tol {
				ratio := tab[i][cols-1] / tab[i][enter]
				if ratio < best-tol || (ratio < best+tol && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return 0, Unbounded
		}
		pivot(tab, basis, leave, enter, cols)
	}
}

// pivot performs a Gauss-Jordan pivot making column enter basic in row leave.
func pivot(tab [][]float64, basis []int, leave, enter, cols int) {
	pv := tab[leave][enter]
	inv := 1 / pv
	for j := 0; j < cols; j++ {
		tab[leave][j] *= inv
	}
	tab[leave][enter] = 1 // exact
	for i := range tab {
		if i == leave {
			continue
		}
		f := tab[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			tab[i][j] -= f * tab[leave][j]
		}
		tab[i][enter] = 0 // exact
	}
	basis[leave] = enter
}
