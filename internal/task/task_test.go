package task

import (
	"math"
	"testing"
	"testing/quick"
)

func TestContextInRange(t *testing.T) {
	err := quick.Check(func(in, out float64, res uint8, lat bool) bool {
		tk := &Task{
			InputMbit:        5 + math.Abs(in)*15/(1+math.Abs(in)),
			OutputMbit:       1 + math.Abs(out)*3/(1+math.Abs(out)),
			Resource:         ResourceKind(res % 3),
			LatencySensitive: lat,
		}
		return tk.Context().Valid() && tk.ContextWithLatency().Valid()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestContextClampsOutOfRange(t *testing.T) {
	tk := &Task{InputMbit: 1000, OutputMbit: -5, Resource: CPU}
	c := tk.Context()
	if c[0] != 1 {
		t.Fatalf("oversize input should clamp to 1, got %v", c[0])
	}
	if c[1] != 0 {
		t.Fatalf("negative output should clamp to 0, got %v", c[1])
	}
}

func TestContextDims(t *testing.T) {
	tk := &Task{InputMbit: 10, OutputMbit: 2}
	if len(tk.Context()) != ContextDims {
		t.Fatalf("context dims = %d", len(tk.Context()))
	}
	if len(tk.ContextWithLatency()) != ContextDims+1 {
		t.Fatal("latency context should add one dim")
	}
}

func TestResourceCoordSeparation(t *testing.T) {
	// With an h=3 partition on [0,1], the three resource kinds must land in
	// three distinct cells: [0,1/3), [1/3,2/3), [2/3,1].
	coords := map[int]bool{}
	for r := 0; r < NumResourceKinds; r++ {
		c := resourceCoord(ResourceKind(r))
		cell := int(c * 3)
		if cell == 3 {
			cell = 2
		}
		if coords[cell] {
			t.Fatalf("resource kinds collide in cell %d", cell)
		}
		coords[cell] = true
	}
}

func TestContextNormalizationEndpoints(t *testing.T) {
	lo := &Task{InputMbit: MinInputMbit, OutputMbit: MinOutputMbit}
	hi := &Task{InputMbit: MaxInputMbit, OutputMbit: MaxOutputMbit}
	if c := lo.Context(); c[0] != 0 || c[1] != 0 {
		t.Fatalf("min task context = %v", c)
	}
	if c := hi.Context(); c[0] != 1 || c[1] != 1 {
		t.Fatalf("max task context = %v", c)
	}
}

func TestContextValid(t *testing.T) {
	if !(Context{0, 0.5, 1}).Valid() {
		t.Fatal("valid context rejected")
	}
	if (Context{-0.1}).Valid() || (Context{1.1}).Valid() || (Context{math.NaN()}).Valid() {
		t.Fatal("invalid context accepted")
	}
}

func TestContextDistance(t *testing.T) {
	a := Context{0, 0}
	b := Context{3.0 / 5, 4.0 / 5}
	if d := a.Distance(b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("distance = %v", d)
	}
	if d := a.Distance(a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestContextDistancePanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	(Context{1}).Distance(Context{1, 2})
}

func TestContextClone(t *testing.T) {
	a := Context{0.1, 0.2}
	b := a.Clone()
	b[0] = 0.9
	if a[0] != 0.1 {
		t.Fatal("Clone aliases original")
	}
}

func TestResourceKindRoundTrip(t *testing.T) {
	for r := 0; r < NumResourceKinds; r++ {
		k := ResourceKind(r)
		parsed, err := ParseResourceKind(k.String())
		if err != nil || parsed != k {
			t.Fatalf("round trip %v: %v %v", k, parsed, err)
		}
	}
	if _, err := ParseResourceKind("quantum"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParseResourceKind("both"); err != nil {
		t.Fatal("alias 'both' rejected")
	}
}

func TestValidate(t *testing.T) {
	good := &Task{ID: 1, InputMbit: 10, OutputMbit: 2, Resource: GPU}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	for _, bad := range []*Task{
		{InputMbit: -1, OutputMbit: 2},
		{InputMbit: 10, OutputMbit: math.NaN()},
		{InputMbit: 10, OutputMbit: 2, Resource: 99},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid task accepted: %+v", bad)
		}
	}
}

func TestString(t *testing.T) {
	tk := &Task{ID: 7, WD: 3, InputMbit: 12, OutputMbit: 2, LatencySensitive: true, Resource: CPUGPU}
	s := tk.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	if (ResourceKind(42)).String() == "" {
		t.Fatal("unknown resource String empty")
	}
}
