// Package task defines the computing-task model of the paper's Sec. 3.2:
// each offloading request carries meta information (input data size, output
// data size, latency class, required compute resource kind, ...) summarised
// as a context vector φ ∈ [0,1]^{D_b}. The MBS never sees the raw task
// payload, only this context plus, after execution, the realised reward,
// completion indicator and resource consumption.
package task

import (
	"fmt"
	"math"
)

// ResourceKind is the type of compute resource a task depends on.
// The paper's evaluation uses three kinds: CPU, GPU, or both.
type ResourceKind int

const (
	CPU ResourceKind = iota
	GPU
	CPUGPU // task needs both CPU and GPU
	numResourceKinds
)

// NumResourceKinds is the number of distinct resource kinds.
const NumResourceKinds = int(numResourceKinds)

// String implements fmt.Stringer.
func (r ResourceKind) String() string {
	switch r {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	case CPUGPU:
		return "cpu+gpu"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// ParseResourceKind is the inverse of String, used by the CSV trace loader.
func ParseResourceKind(s string) (ResourceKind, error) {
	switch s {
	case "cpu":
		return CPU, nil
	case "gpu":
		return GPU, nil
	case "cpu+gpu", "both":
		return CPUGPU, nil
	}
	return 0, fmt.Errorf("task: unknown resource kind %q", s)
}

// Context is a point in the normalised context space Φ = [0,1]^{D_b}.
type Context []float64

// Valid reports whether every coordinate lies in [0,1] and is finite.
func (c Context) Valid() bool {
	for _, v := range c {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the context.
func (c Context) Clone() Context {
	return append(Context(nil), c...)
}

// Distance returns the Euclidean distance between two contexts of equal
// dimension (the metric of the paper's Hölder continuity Assumption 1).
func (c Context) Distance(o Context) float64 {
	if len(c) != len(o) {
		panic("task: context dimension mismatch")
	}
	sum := 0.0
	for i := range c {
		d := c[i] - o[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Bounds of the raw meta-information used by the paper's evaluation
// (Sec. 5): input 5–20 Mbit, output 1–4 Mbit.
const (
	MinInputMbit  = 5.0
	MaxInputMbit  = 20.0
	MinOutputMbit = 1.0
	MaxOutputMbit = 4.0
)

// Task is one offloading request from a wireless device.
type Task struct {
	// ID is unique within a simulation run.
	ID int64
	// WD identifies the originating wireless device (for mobility traces).
	WD int
	// InputMbit is the input data size to transmit WD → SCN.
	InputMbit float64
	// OutputMbit is the result size to transmit SCN → WD.
	OutputMbit float64
	// LatencySensitive marks the latency class (paper's two QoS categories).
	LatencySensitive bool
	// Resource is the compute resource kind the task depends on.
	Resource ResourceKind
	// DurationSlots is the number of slots the task needs to execute
	// (0 and 1 both mean a single slot — the paper's base model). Values
	// above 1 activate the multi-slot future-work extension (paper
	// Sec. 3.3/6): the task must be re-selected in consecutive slots to
	// finish, and its full reward arrives only after complete execution.
	DurationSlots int
}

// Duration returns the effective execution length in slots (at least 1).
func (t *Task) Duration() int {
	if t.DurationSlots < 1 {
		return 1
	}
	return t.DurationSlots
}

// ContextDims is the default number of context dimensions D_b used by the
// paper's evaluation: input-size category, output-size category, resource
// kind. (Latency class folds into the reward process, not the context, in
// the headline experiments; WithLatencyContext extends the context to 4-D.)
const ContextDims = 3

// Context maps the task's meta information into Φ = [0,1]^{D_b}.
//
// Each raw attribute is min-max normalised into [0,1]; the hypercube
// partition (internal/hypercube) is what turns these continuous values into
// the paper's "categories" (h=3 reproduces "divide the input/output data
// size into three categories").
func (t *Task) Context() Context {
	return Context{
		normalize(t.InputMbit, MinInputMbit, MaxInputMbit),
		normalize(t.OutputMbit, MinOutputMbit, MaxOutputMbit),
		resourceCoord(t.Resource),
	}
}

// ContextWithLatency is the 4-D context variant including the latency class.
func (t *Task) ContextWithLatency() Context {
	lat := 0.0
	if t.LatencySensitive {
		lat = 1.0
	}
	return append(t.Context(), lat)
}

// AppendContext appends the task's context coordinates to dst and returns
// the extended slice — the allocation-free form of Context for hot loops
// that pack many contexts into one backing array (the simulator's slot
// builder). withLatency appends the 4th (latency class) coordinate.
func (t *Task) AppendContext(dst []float64, withLatency bool) []float64 {
	dst = append(dst,
		normalize(t.InputMbit, MinInputMbit, MaxInputMbit),
		normalize(t.OutputMbit, MinOutputMbit, MaxOutputMbit),
		resourceCoord(t.Resource))
	if withLatency {
		lat := 0.0
		if t.LatencySensitive {
			lat = 1.0
		}
		dst = append(dst, lat)
	}
	return dst
}

// normalize min-max scales v into [0,1], clamping out-of-range inputs so a
// malformed trace row cannot push a context outside Φ.
func normalize(v, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	x := (v - lo) / (hi - lo)
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// resourceCoord spreads the discrete resource kinds across [0,1] at cell
// midpoints so that an h=3 partition separates them exactly.
func resourceCoord(r ResourceKind) float64 {
	return (float64(r) + 0.5) / float64(NumResourceKinds)
}

// Validate checks the task's raw fields against the model's bounds.
func (t *Task) Validate() error {
	if t.InputMbit < 0 || math.IsNaN(t.InputMbit) {
		return fmt.Errorf("task %d: negative input size %v", t.ID, t.InputMbit)
	}
	if t.OutputMbit < 0 || math.IsNaN(t.OutputMbit) {
		return fmt.Errorf("task %d: negative output size %v", t.ID, t.OutputMbit)
	}
	if t.Resource < 0 || int(t.Resource) >= NumResourceKinds {
		return fmt.Errorf("task %d: unknown resource kind %d", t.ID, t.Resource)
	}
	return nil
}

// String renders the task compactly for logs.
func (t *Task) String() string {
	lat := "lat-insensitive"
	if t.LatencySensitive {
		lat = "lat-sensitive"
	}
	return fmt.Sprintf("task{id=%d wd=%d in=%.1fMb out=%.1fMb %s %s}",
		t.ID, t.WD, t.InputMbit, t.OutputMbit, lat, t.Resource)
}
