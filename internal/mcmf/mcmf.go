// Package mcmf implements min-cost max-flow via successive shortest paths
// with Johnson potentials (Bellman-Ford initialisation, Dijkstra iterations).
//
// In this repository it serves as the *exact* assignment solver: the task
// offloading sub-problem "assign each task to at most one SCN, at most c
// tasks per SCN, maximising total weight" is an instance of transportation
// min-cost flow. The paper's greedy Alg. 4 is (c+1)-approximate (Lemma 2);
// we use this solver to measure how close the greedy actually gets, and as
// an optional drop-in assignment stage.
//
// Costs are float64; the solver is exact up to floating-point comparison
// with a small epsilon, which is sufficient for the bounded, well-scaled
// weights used here (probabilities and rewards in [0,1]).
package mcmf

import (
	"container/heap"
	"fmt"
	"math"
)

const eps = 1e-12

// Graph is a flow network under construction. Nodes are dense integers.
type Graph struct {
	n     int
	edges []edge // forward/backward pairs at 2i, 2i+1
	head  [][]int32
}

type edge struct {
	to   int32
	cap  int32
	cost float64
}

// NewGraph creates a network with n nodes and no edges.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic("mcmf: graph needs at least one node")
	}
	return &Graph{n: n, head: make([][]int32, n)}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost, returning the edge id (usable with Flow after solving).
func (g *Graph) AddEdge(u, v, capacity int, cost float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("mcmf: edge %d→%d out of range", u, v))
	}
	if capacity < 0 {
		panic("mcmf: negative capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: int32(v), cap: int32(capacity), cost: cost})
	g.edges = append(g.edges, edge{to: int32(u), cap: 0, cost: -cost})
	g.head[u] = append(g.head[u], int32(id))
	g.head[v] = append(g.head[v], int32(id+1))
	return id
}

// Flow returns the flow routed on edge id after Solve.
func (g *Graph) Flow(id int) int {
	return int(g.edges[id^1].cap)
}

// Result summarises a solve.
type Result struct {
	// MaxFlow is the total flow routed from source to sink.
	MaxFlow int
	// Cost is the total cost of the routed flow.
	Cost float64
}

// priority queue for Dijkstra
type pqItem struct {
	node int32
	dist float64
}
type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Solve computes a min-cost max-flow from s to t. Negative edge costs are
// allowed (handled by a Bellman-Ford potential initialisation); negative
// cycles are not supported and cause a panic after too many relaxations.
func (g *Graph) Solve(s, t int) Result { return g.solve(s, t, false) }

// SolveProfitable augments only while the cheapest augmenting path has
// strictly negative cost. With rewards encoded as negative costs this yields
// the maximum-profit flow rather than the maximum flow — assignments skip
// tasks that would not add value.
func (g *Graph) SolveProfitable(s, t int) Result { return g.solve(s, t, true) }

func (g *Graph) solve(s, t int, stopNonNegative bool) Result {
	if s < 0 || s >= g.n || t < 0 || t >= g.n || s == t {
		panic("mcmf: invalid source/sink")
	}
	pot := g.initialPotentials(s)
	dist := make([]float64, g.n)
	prevEdge := make([]int32, g.n)
	visited := make([]bool, g.n)
	var res Result
	for {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
			visited[i] = false
		}
		dist[s] = 0
		q := pq{{node: int32(s), dist: 0}}
		for len(q) > 0 {
			it := heap.Pop(&q).(pqItem)
			u := int(it.node)
			if visited[u] {
				continue
			}
			visited[u] = true
			for _, id := range g.head[u] {
				e := &g.edges[id]
				if e.cap <= 0 {
					continue
				}
				v := int(e.to)
				rc := e.cost + pot[u] - pot[v]
				if rc < -1e-7 {
					// Reduced costs must be non-negative with valid
					// potentials; tolerate tiny float noise.
					rc = 0
				}
				if nd := dist[u] + rc; nd+eps < dist[v] {
					dist[v] = nd
					prevEdge[v] = id
					heap.Push(&q, pqItem{node: int32(v), dist: nd})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			return res
		}
		for i := 0; i < g.n; i++ {
			if !math.IsInf(dist[i], 1) {
				pot[i] += dist[i]
			}
		}
		// pot[s] stays 0 throughout, so pot[t] is the true (non-reduced)
		// cost of the cheapest augmenting path.
		if stopNonNegative && pot[t] >= -eps {
			return res
		}
		// Find bottleneck along the shortest path.
		bottleneck := int32(math.MaxInt32)
		for v := t; v != s; {
			id := prevEdge[v]
			if g.edges[id].cap < bottleneck {
				bottleneck = g.edges[id].cap
			}
			v = int(g.edges[id^1].to)
		}
		// Augment.
		for v := t; v != s; {
			id := prevEdge[v]
			g.edges[id].cap -= bottleneck
			g.edges[id^1].cap += bottleneck
			res.Cost += float64(bottleneck) * g.edges[id].cost
			v = int(g.edges[id^1].to)
		}
		res.MaxFlow += int(bottleneck)
	}
}

// initialPotentials runs Bellman-Ford from s so Dijkstra can handle the
// negative edge costs used to encode "maximise reward" as "minimise -reward".
func (g *Graph) initialPotentials(s int) []float64 {
	pot := make([]float64, g.n)
	for i := range pot {
		pot[i] = math.Inf(1)
	}
	pot[s] = 0
	for iter := 0; iter < g.n; iter++ {
		changed := false
		for u := 0; u < g.n; u++ {
			if math.IsInf(pot[u], 1) {
				continue
			}
			for _, id := range g.head[u] {
				e := &g.edges[id]
				if e.cap <= 0 {
					continue
				}
				if nd := pot[u] + e.cost; nd+eps < pot[int(e.to)] {
					pot[int(e.to)] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == g.n-1 {
			panic("mcmf: negative cycle detected")
		}
	}
	for i := range pot {
		if math.IsInf(pot[i], 1) {
			pot[i] = 0 // unreachable: any finite potential is fine
		}
	}
	return pot
}

// AssignMax solves the offloading assignment exactly: weights[m][i] is the
// value of assigning task i to SCN m (math.Inf(-1) or NaN marks "not
// covered"), cap is the per-SCN capacity c. It returns the assignment as
// assigned[i] = m (or -1) and the total value. Only strictly positive
// weights are worth assigning; zero/negative edges are left unassigned.
func AssignMax(weights [][]float64, numTasks, capacity int) (assigned []int, total float64) {
	m := len(weights)
	assigned = make([]int, numTasks)
	for i := range assigned {
		assigned[i] = -1
	}
	if m == 0 || numTasks == 0 || capacity <= 0 {
		return assigned, 0
	}
	// Nodes: 0 = source, 1..m = SCNs, m+1..m+numTasks = tasks, m+numTasks+1 = sink.
	src := 0
	sink := m + numTasks + 1
	g := NewGraph(sink + 1)
	for j := 0; j < m; j++ {
		g.AddEdge(src, 1+j, capacity, 0)
	}
	type edgeRef struct{ id, m, i int }
	var refs []edgeRef
	for j := 0; j < m; j++ {
		row := weights[j]
		for i := 0; i < numTasks && i < len(row); i++ {
			w := row[i]
			if math.IsNaN(w) || math.IsInf(w, -1) || w <= 0 {
				continue
			}
			id := g.AddEdge(1+j, 1+m+i, 1, -w)
			refs = append(refs, edgeRef{id: id, m: j, i: i})
		}
	}
	for i := 0; i < numTasks; i++ {
		g.AddEdge(1+m+i, sink, 1, 0)
	}
	g.SolveProfitable(src, sink)
	for _, r := range refs {
		if g.Flow(r.id) > 0 {
			assigned[r.i] = r.m
			total += weights[r.m][r.i]
		}
	}
	return assigned, total
}
