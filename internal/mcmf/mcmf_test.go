package mcmf

import (
	"math"
	"testing"

	"lfsc/internal/rng"
)

func TestSimpleMaxFlow(t *testing.T) {
	// s → a → t and s → b → t, unit capacities.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 2)
	g.AddEdge(1, 3, 1, 1)
	g.AddEdge(2, 3, 1, 1)
	res := g.Solve(0, 3)
	if res.MaxFlow != 2 {
		t.Fatalf("max flow = %d, want 2", res.MaxFlow)
	}
	if math.Abs(res.Cost-5) > 1e-9 {
		t.Fatalf("cost = %v, want 5", res.Cost)
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel 2-hop paths with different costs; capacity forces one unit.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(0, 2, 1, 1)
	g.AddEdge(1, 3, 1, 0)
	g.AddEdge(2, 3, 1, 0)
	// Only one unit can leave the source? No — both can. Limit the sink.
	g2 := NewGraph(5)
	g2.AddEdge(0, 1, 1, 10)
	g2.AddEdge(0, 2, 1, 1)
	g2.AddEdge(1, 3, 1, 0)
	g2.AddEdge(2, 3, 1, 0)
	g2.AddEdge(3, 4, 1, 0) // sink bottleneck
	res := g2.Solve(0, 4)
	if res.MaxFlow != 1 || math.Abs(res.Cost-1) > 1e-9 {
		t.Fatalf("flow=%d cost=%v, want 1 unit at cost 1", res.MaxFlow, res.Cost)
	}
}

func TestNegativeCosts(t *testing.T) {
	// Negative edge reachable only via Bellman-Ford initial potentials.
	g := NewGraph(3)
	id := g.AddEdge(0, 1, 2, -5)
	g.AddEdge(1, 2, 2, 1)
	res := g.Solve(0, 2)
	if res.MaxFlow != 2 {
		t.Fatalf("max flow = %d", res.MaxFlow)
	}
	if math.Abs(res.Cost-(-8)) > 1e-9 {
		t.Fatalf("cost = %v, want -8", res.Cost)
	}
	if g.Flow(id) != 2 {
		t.Fatalf("edge flow = %d", g.Flow(id))
	}
}

func TestSolveProfitableStopsAtZero(t *testing.T) {
	// Path A has cost -3 (profitable), path B cost +2 (not). Max flow would
	// take both; profitable flow takes only A.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1, -3)
	g.AddEdge(1, 3, 1, 0)
	g.AddEdge(0, 2, 1, 2)
	g.AddEdge(2, 3, 1, 0)
	res := g.SolveProfitable(0, 3)
	if res.MaxFlow != 1 || math.Abs(res.Cost-(-3)) > 1e-9 {
		t.Fatalf("profitable flow=%d cost=%v, want 1/-3", res.MaxFlow, res.Cost)
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("NewGraph(0)", func() { NewGraph(0) })
	assertPanics("edge out of range", func() { NewGraph(2).AddEdge(0, 5, 1, 0) })
	assertPanics("negative capacity", func() { NewGraph(2).AddEdge(0, 1, -1, 0) })
	assertPanics("same source/sink", func() { NewGraph(2).Solve(1, 1) })
}

func TestAssignMaxSmall(t *testing.T) {
	// 2 SCNs, 3 tasks, capacity 1: optimal picks the best task per SCN
	// without conflicts.
	weights := [][]float64{
		{0.9, 0.8, 0.1},
		{0.85, 0.2, 0.3},
	}
	assigned, total := AssignMax(weights, 3, 1)
	// Optimal: SCN0→task1? No: SCN0 takes 0.9 (task0) forces SCN1 to 0.3 →
	// 1.2; SCN0 takes 0.8 (task1), SCN1 takes 0.85 (task0) → 1.65. Optimal.
	if math.Abs(total-1.65) > 1e-9 {
		t.Fatalf("total = %v, want 1.65 (assigned %v)", total, assigned)
	}
	if assigned[0] != 1 || assigned[1] != 0 || assigned[2] != -1 {
		t.Fatalf("assignment = %v", assigned)
	}
}

func TestAssignMaxRespectsCapacity(t *testing.T) {
	weights := [][]float64{{0.5, 0.6, 0.7, 0.8}}
	assigned, total := AssignMax(weights, 4, 2)
	count := 0
	for _, m := range assigned {
		if m == 0 {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("assigned %d tasks, capacity 2", count)
	}
	if math.Abs(total-1.5) > 1e-9 {
		t.Fatalf("total = %v, want 0.7+0.8", total)
	}
}

func TestAssignMaxSkipsNonPositive(t *testing.T) {
	weights := [][]float64{{-1, 0, math.Inf(-1), math.NaN(), 0.4}}
	assigned, total := AssignMax(weights, 5, 5)
	for i := 0; i < 4; i++ {
		if assigned[i] != -1 {
			t.Fatalf("non-positive task %d assigned", i)
		}
	}
	if assigned[4] != 0 || math.Abs(total-0.4) > 1e-9 {
		t.Fatalf("assigned=%v total=%v", assigned, total)
	}
}

func TestAssignMaxEmpty(t *testing.T) {
	assigned, total := AssignMax(nil, 0, 3)
	if len(assigned) != 0 || total != 0 {
		t.Fatal("empty instance should be trivial")
	}
	assigned, total = AssignMax([][]float64{{0.5}}, 1, 0)
	if assigned[0] != -1 || total != 0 {
		t.Fatal("zero capacity should assign nothing")
	}
}

// bruteForceAssign enumerates all assignments (m+1 choices per task) for
// tiny instances.
func bruteForceAssign(weights [][]float64, numTasks, capacity int) float64 {
	m := len(weights)
	best := 0.0
	choice := make([]int, numTasks)
	var rec func(i int)
	rec = func(i int) {
		if i == numTasks {
			counts := make([]int, m)
			total := 0.0
			for tsk, scn := range choice {
				if scn < 0 {
					continue
				}
				counts[scn]++
				if counts[scn] > capacity {
					return
				}
				w := weights[scn][tsk]
				if math.IsNaN(w) || w <= 0 {
					return
				}
				total += w
			}
			if total > best {
				best = total
			}
			return
		}
		for c := -1; c < m; c++ {
			choice[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestAssignMaxMatchesBruteForce(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		m := 1 + r.Intn(3)
		n := 1 + r.Intn(5)
		capacity := 1 + r.Intn(2)
		weights := make([][]float64, m)
		for j := range weights {
			weights[j] = make([]float64, n)
			for i := range weights[j] {
				if r.Bernoulli(0.3) {
					weights[j][i] = math.Inf(-1) // not covered
				} else {
					weights[j][i] = r.Float64()
				}
			}
		}
		_, got := AssignMax(weights, n, capacity)
		want := bruteForceAssign(weights, n, capacity)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: mcmf %v != brute force %v (weights %v cap %d)",
				trial, got, want, weights, capacity)
		}
	}
}

func TestAssignMaxNoDuplicateAssignment(t *testing.T) {
	r := rng.New(7)
	weights := make([][]float64, 5)
	for j := range weights {
		weights[j] = make([]float64, 40)
		for i := range weights[j] {
			weights[j][i] = r.Float64()
		}
	}
	assigned, _ := AssignMax(weights, 40, 3)
	counts := make([]int, 5)
	for _, m := range assigned {
		if m >= 0 {
			counts[m]++
		}
	}
	for j, c := range counts {
		if c > 3 {
			t.Fatalf("SCN %d assigned %d > capacity 3", j, c)
		}
	}
}

func BenchmarkAssignMaxPaperScale(b *testing.B) {
	r := rng.New(1)
	const m, n, capacity = 30, 2000, 20
	weights := make([][]float64, m)
	for j := range weights {
		weights[j] = make([]float64, n)
		for i := range weights[j] {
			if r.Bernoulli(0.95) {
				weights[j][i] = math.Inf(-1)
			} else {
				weights[j][i] = r.Float64()
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = AssignMax(weights, n, capacity)
	}
}
